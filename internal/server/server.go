package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aes"
	"repro/internal/gf"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/rs"
)

// demoKey is the AES-128 key used when Config.Key is empty — the same
// well-known demo key the gfpipe loopback driver uses. Real deployments
// must supply their own key.
var demoKey = []byte("gfpipe-demo-key!")

// Config sizes and parameterizes a Server. The codec knobs mirror
// cmd/gfpipe: one RS(n,k) code over GF(2^8), interleaved to the given
// depth, plus an AES-GCM instance for the seal/open ops.
type Config struct {
	// N, K, Depth select the RS code and interleaving depth. Zero values
	// default to RS(255,239) at depth 1.
	N, K, Depth int
	// Batch is the maximum number of interleaver frames a single RS
	// request may pack (its payload then being a multiple of the frame
	// unit, up to Batch units). 1 (the default) keeps the strict
	// one-frame-per-request contract; each request is still one pipeline
	// frame and one window slot regardless of its width.
	Batch int
	// Workers and Queue size the shared pipeline (see pipeline.Config).
	Workers, Queue int
	// Key is the AES key for the seal/open ops (empty selects a
	// well-known demo key). AAD is bound into every tag (may be nil).
	Key, AAD []byte
	// Curve selects the binary curve for the ECC ops ("" means
	// DefaultCurve; CurveOff disables them). ECCKey, when set, seeds the
	// deterministic derivation of the service's private scalar; when
	// empty the scalar is derived from Key, so a fleet sharing Key (and
	// curve) shares the signing identity — the property that makes
	// ecdsa-sign retry-safe across backends.
	Curve  string
	ECCKey []byte
	// MaxPayload is the per-request payload guard (0 = DefaultMaxPayload).
	MaxPayload int
	// Window caps each connection's in-flight requests; a client
	// pipelining deeper simply blocks in its own socket (0 = 32).
	Window int
	// ReadTimeout is the per-connection idle limit between requests
	// (0 = no limit). WriteTimeout bounds each response write (0 = no
	// limit).
	ReadTimeout, WriteTimeout time.Duration
	// TraceEvery sets background frame-lifecycle sampling on the shared
	// pipeline: one in every TraceEvery frames is traced (1 = all,
	// 0 = background sampling effectively off — request-scoped
	// distributed traces still record per-stage spans). TraceSlowest is
	// how many of the slowest traces are retained for the /statsz dump
	// (0 = 16).
	TraceEvery, TraceSlowest int
	// TraceRing caps the distributed-trace span ring served at /tracez
	// (0 = trace.DefaultRingSize). Spans are recorded only for requests
	// arriving with a sampled trace context, so the ring costs nothing
	// under untraced load.
	TraceRing int
	// SLO, when non-nil, receives every pipeline-served request's
	// end-to-end latency keyed by (op, tenant) — tenant being the
	// client's remote host — for error-budget accounting (obs.NewSLO).
	SLO *obs.SLO
	// WideLog, when non-nil, emits one structured wide event per
	// completed request: always for trace-sampled requests, plus one in
	// every WideEvery untraced completions (WideEvery 0 logs sampled
	// requests only).
	WideLog   *slog.Logger
	WideEvery int
	// Logf, when set, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.N == 0 && c.K == 0 {
		c.N, c.K = 255, 239
	}
	if c.Depth == 0 {
		c.Depth = 1
	}
	if len(c.Key) == 0 {
		c.Key = demoKey
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = DefaultMaxPayload
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	return c
}

// Server is the network-facing codec service. Construct with New, run
// with Serve (or ListenAndServe), stop with Shutdown.
type Server struct {
	cfg Config
	iv  *rs.Interleaved
	pl  *pipeline.Pipeline
	run *pipeline.Run

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	serving  bool

	readerWG     sync.WaitGroup // connection read loops
	writerWG     sync.WaitGroup // connection write loops
	inflight     sync.WaitGroup // frames submitted but not yet routed
	dispatchDone chan struct{}

	st  selftest
	ctr counters
	ecc *eccService // nil when Config.Curve is CurveOff

	spans    *trace.Ring           // /tracez distributed-trace span ring
	opLat    [opLatSlots]perf.Hist // end-to-end latency per op
	opEx     [opLatSlots]obs.Exemplar
	wideTick atomic.Uint64 // 1/WideEvery sampler for untraced wide events
}

// opLatSlots sizes the per-op latency arrays: ops are small contiguous
// protocol constants (1..9), indexed directly.
const opLatSlots = 10

// pendingReq rides pipeline.Frame.Tag from submission to delivery: the
// connection and request id a completed frame's response belongs to,
// plus the request's trace context and hop timestamps, closed out by
// finishRequest when the response hits (or misses) the wire.
type pendingReq struct {
	c  *conn
	op Op
	id uint64

	tc   trace.Context // zero when the request carried no trace context
	span uint64        // this hop's request-span id (sampled requests only)

	read      time.Time // request framed off the socket
	submitted time.Time // frame entered the shared pipeline
	routed    time.Time // response routed to the connection's write queue

	ft    pipeline.FrameTrace // per-stage lifecycle (sampled requests only)
	hasFT bool
}

// TraceWanted and ObserveTrace implement pipeline.TraceObserver: the
// reorder sink hands a sampled frame's materialized stage record to its
// pendingReq before delivery, and finishRequest later turns it into
// stage spans. The unsynchronized fields are safe: ObserveTrace runs
// before the frame reaches Run.Out, which happens before dispatch
// routes the response to the write loop — channel handoffs order both.
func (pr *pendingReq) TraceWanted() bool { return pr.tc.Sampled }

// ObserveTrace retains the stage record for span recording.
func (pr *pendingReq) ObserveTrace(ft pipeline.FrameTrace) { pr.ft, pr.hasFT = ft, true }

// New builds the server: codec instances, the shared pipeline (one
// dispatch stage fanned out over Workers goroutines), and a started run
// ready to accept frames.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.N <= 0 || cfg.K <= 0 {
		return nil, fmt.Errorf("server: non-positive code parameters n=%d k=%d", cfg.N, cfg.K)
	}
	if cfg.K >= cfg.N {
		return nil, fmt.Errorf("server: k=%d must be below n=%d", cfg.K, cfg.N)
	}
	if cfg.Depth <= 0 {
		return nil, fmt.Errorf("server: non-positive interleave depth %d", cfg.Depth)
	}
	f8 := gf.MustDefault(8)
	code, err := rs.New(f8, cfg.N, cfg.K)
	if err != nil {
		return nil, err
	}
	iv, err := rs.NewInterleaved(code, cfg.Depth)
	if err != nil {
		return nil, err
	}
	var enc, dec pipeline.Stage
	if cfg.Depth == 1 {
		if enc, err = pipeline.NewRSEncode(code); err != nil {
			return nil, err
		}
		if dec, err = pipeline.NewRSDecode(code); err != nil {
			return nil, err
		}
	} else {
		if enc, err = pipeline.NewRSFrameEncode(iv); err != nil {
			return nil, err
		}
		if dec, err = pipeline.NewRSFrameDecode(iv); err != nil {
			return nil, err
		}
	}
	cipher, err := aes.NewCipher(cfg.Key)
	if err != nil {
		return nil, err
	}
	eccSvc, err := newECCService(cfg)
	if err != nil {
		return nil, err
	}
	disp := &dispatchStage{enc: enc, dec: dec, gcm: cipher.NewGCM(), aad: cfg.AAD, ecc: eccSvc}
	pl, err := pipeline.New(pipeline.Config{Workers: cfg.Workers, Queue: cfg.Queue, Batch: cfg.Batch}, disp)
	if err != nil {
		return nil, err
	}
	if cfg.TraceEvery > 0 {
		pl.EnableTracing(pipeline.TraceConfig{SampleEvery: cfg.TraceEvery, Slowest: cfg.TraceSlowest})
	} else {
		// Background frame sampling is off, but the tracer must still
		// exist: request-scoped distributed traces force a per-stage
		// record through it regardless of the 1/N tick, and without one a
		// traced request would lose its pipeline-stage spans. A ~1e9
		// period keeps the background path effectively dark (one atomic
		// increment per frame, no allocation).
		pl.EnableTracing(pipeline.TraceConfig{SampleEvery: 1 << 30, Slowest: cfg.TraceSlowest})
	}
	s := &Server{
		cfg:          cfg,
		iv:           iv,
		pl:           pl,
		run:          pl.Start(),
		conns:        make(map[*conn]struct{}),
		dispatchDone: make(chan struct{}),
		ecc:          eccSvc,
		spans:        trace.NewRing(cfg.TraceRing),
	}
	go s.dispatch()
	return s, nil
}

// Code returns the server's interleaved RS configuration.
func (s *Server) Code() *rs.Interleaved { return s.iv }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown (which closes ln) or a
// listener failure. It returns nil after a clean Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		// Shutdown won the race to start: nothing to serve, cleanly.
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	if s.serving {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: Serve called twice")
	}
	s.serving = true
	s.ln = ln
	s.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.startConn(nc)
	}
}

// Addr returns the listener address once Serve has been called
// (nil before).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// startConn registers and launches one connection's read and write
// loops, unless the server is already draining.
func (s *Server) startConn(nc net.Conn) {
	tenant := nc.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(tenant); err == nil {
		tenant = host
	}
	c := &conn{
		s:      s,
		nc:     nc,
		tenant: tenant,
		bw:     bufio.NewWriterSize(nc, 64<<10),
		writeq: make(chan outMsg, s.cfg.Window+1), // +1: one conn-fatal error reply past the window
		sem:    make(chan struct{}, s.cfg.Window),
		dead:   make(chan struct{}),
		lame:   make(chan struct{}),
		drain:  make(chan struct{}),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.readerWG.Add(1)
	s.writerWG.Add(1)
	s.mu.Unlock()
	s.ctr.connsAccepted.Add(1)
	s.ctr.connsActive.Add(1)
	go c.readLoop()
	go c.writeLoop()
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.ctr.connsActive.Add(-1)
}

// dispatch is the single response router: it consumes delivered frames
// from the shared run and hands each response to its connection's write
// queue. The per-connection window guarantees the queue has room, so
// dispatch never blocks on a slow client — it drops the response only
// when the connection has already died.
func (s *Server) dispatch() {
	defer close(s.dispatchDone)
	for f := range s.run.Out() {
		pr, ok := f.Tag.(*pendingReq)
		if !ok { // not ours; nothing to route
			f.Recycle()
			continue
		}
		pr.routed = time.Now()
		var om outMsg
		if f.Err != nil {
			payload := []byte(f.Err.Error())
			f.Recycle()
			om = outMsg{m: &Message{Op: pr.op, Status: StatusCodecFailed, ID: pr.id, Payload: payload}, pr: pr}
		} else {
			// The response references the frame's (pool-backed) payload;
			// the writer recycles it after the bytes hit the socket.
			om = outMsg{m: &Message{Op: pr.op, ID: pr.id, Payload: f.Data}, f: f, pr: pr}
		}
		switch pr.c.route(om) {
		case routeOK:
		case routeClosed:
			if om.f != nil {
				om.f.Recycle()
			}
			s.ctr.dropped.Add(1)
		case routeFull:
			// Window invariant broken — should be impossible. Kill the
			// connection rather than stall every other client.
			if om.f != nil {
				om.f.Recycle()
			}
			s.ctr.dropped.Add(1)
			s.logf("server: write queue overflow on %v (window invariant)", pr.c.nc.RemoteAddr())
			pr.c.fail()
		}
		s.inflight.Done()
	}
}

// Shutdown gracefully stops the server: it stops accepting, lets every
// connection finish reading its current request, drains all in-flight
// frames through the pipeline, flushes every pending response, then
// closes the connections and returns. If ctx expires first, remaining
// connections are closed immediately and ctx.Err() is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if s.ln != nil {
		s.ln.Close()
	}
	// Kick blocked readers out of their socket reads; they observe
	// draining and stop instead of treating it as an idle timeout.
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if already {
		return errors.New("server: Shutdown called twice")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.readerWG.Wait()   // no more submissions
		s.inflight.Wait()   // every submitted frame routed to a write queue
		s.run.Close()       // idempotent; lets the dispatcher exit
		<-s.dispatchDone    //
		s.closeConnsDrain() // writers flush their queues and close
		s.writerWG.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.fail()
		}
		s.mu.Unlock()
		s.run.Close()
		return ctx.Err()
	}
}

func (s *Server) closeConnsDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		close(c.drain)
	}
}

// isDraining reports the shutdown flag.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// armRead sets the connection's idle read deadline for the next
// request, unless the server is draining (in which case the deadline
// kick from Shutdown must stay in force). Returns false when draining.
func (s *Server) armRead(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	if rt := s.cfg.ReadTimeout; rt > 0 {
		c.nc.SetReadDeadline(time.Now().Add(rt))
	} else {
		c.nc.SetReadDeadline(time.Time{})
	}
	return true
}

// outMsg is one queued response. f, when non-nil, is the pipeline frame
// whose pooled payload backs m.Payload; the writer recycles it once the
// message is on the wire. pr, when non-nil, is the pipeline-served
// request this response answers; the write loop closes its
// observability books (latency, SLO, spans, wide event) at the
// terminal. unled marks replies outside the request ledger
// (protocol-error reports, which never had a request counted), so the
// terminal accounting in write/drop paths skips them.
type outMsg struct {
	m     *Message
	f     *pipeline.Frame
	pr    *pendingReq
	unled bool
}

// conn is one client connection: a read loop that frames requests and
// submits them, and a write loop that serializes responses.
type conn struct {
	s      *Server
	nc     net.Conn
	tenant string // remote host, the SLO/wide-event tenant key
	bw     *bufio.Writer
	writeq chan outMsg
	sem    chan struct{} // window slots; held from read to response-written
	dead   chan struct{} // closed on error teardown
	lame   chan struct{} // closed on poisoned-stream teardown (flush first)
	drain  chan struct{} // closed by Shutdown once in-flight is drained

	failOnce sync.Once
	lameOnce sync.Once
	broken   bool // write side failed; set only by the write loop

	// wqMu/wqClosed serialize dispatcher routing against write-loop
	// teardown: once the writer abandons the queue it flips wqClosed, so
	// a response can never be enqueued after the final drain and leak
	// unaccounted.
	wqMu     sync.Mutex
	wqClosed bool
}

// routeResult is route's outcome.
type routeResult int

const (
	routeOK     routeResult = iota
	routeClosed             // connection torn down; response not queued
	routeFull               // queue full — the window invariant is broken
)

// route enqueues a dispatcher response, never blocking.
func (c *conn) route(om outMsg) routeResult {
	c.wqMu.Lock()
	defer c.wqMu.Unlock()
	if c.wqClosed {
		return routeClosed
	}
	select {
	case c.writeq <- om:
		return routeOK
	default:
		return routeFull
	}
}

// closeWriteq bars further routing; after it returns the write loop
// owns every remaining queued response.
func (c *conn) closeWriteq() {
	c.wqMu.Lock()
	c.wqClosed = true
	c.wqMu.Unlock()
}

// fail tears the connection down: the write loop exits (dropping queued
// responses), its deferred close unblocks the read loop, and the
// dispatcher drops any still-in-flight responses for this connection.
func (c *conn) fail() {
	c.failOnce.Do(func() { close(c.dead) })
}

// failFlush tears the connection down like fail, but has the write loop
// flush everything already queued first. Used when the reader poisons
// the stream (framing violation): the socket can still carry the error
// reply, and dropping it would race the client out of its diagnostic.
func (c *conn) failFlush() {
	c.lameOnce.Do(func() { close(c.lame) })
}

// readLoop frames requests off the socket and hands them to handle
// until the client disconnects, a framing violation poisons the stream,
// the idle deadline expires, or the server drains.
func (c *conn) readLoop() {
	defer c.s.readerWG.Done()
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		if !c.s.armRead(c) {
			return // draining: stop intake, leave teardown to Shutdown
		}
		m, err := readMessage(br, c.s.cfg.MaxPayload)
		if err != nil {
			if c.s.isDraining() {
				return
			}
			var pe *ProtoError
			if errors.As(err, &pe) {
				// Report the violation, then drop the connection: the
				// stream cannot be resynchronized. No request was ever
				// counted for the garbage bytes, so the error reply is
				// unledgered — protoErrors tracks these separately.
				c.s.ctr.protoErrors.Add(1)
				c.send(outMsg{m: &Message{Status: pe.Status, Payload: []byte(pe.Error())}, unled: true})
				c.failFlush()
				return
			}
			if !errors.Is(err, io.EOF) {
				c.s.logf("server: read from %v: %v", c.nc.RemoteAddr(), err)
			}
			c.fail()
			return
		}
		readAt := time.Now()
		c.s.ctr.requests.Add(1)
		c.s.ctr.bytesIn.Add(int64(headerSize + len(m.Params) + len(m.Payload)))
		if !c.handle(m, readAt) {
			return
		}
	}
}

// handle processes one framed request; it returns false when the
// connection should stop reading.
func (c *conn) handle(m *Message, readAt time.Time) bool {
	// Acquire a window slot (released by the write loop once the
	// response is written). Blocking here is the per-connection
	// backpressure: a client pipelining beyond its window waits.
	select {
	case c.sem <- struct{}{}:
	case <-c.dead:
		c.s.ctr.dropped.Add(1) // framed but the connection died first
		return false
	}
	// A traced request ends its params with a trace-context extension;
	// strip it before op-param validation so op handlers see exactly
	// what a pre-trace client would have sent. A malformed extension
	// downgrades the request to untraced — it never rejects it.
	var tc trace.Context
	if m.Flags&FlagTraced != 0 {
		if ctx, rest, ok := trace.Extract(m.Params); ok {
			tc = ctx
			m.Params = rest
		}
	}
	reject := func(st Status, format string, args ...any) bool {
		return c.send(outMsg{m: &Message{Op: m.Op, Status: st, ID: m.ID,
			Payload: []byte(fmt.Sprintf(format, args...))}})
	}
	iv := c.s.iv
	switch m.Op {
	case OpStats:
		payload, err := json.Marshal(c.s.Snapshot())
		if err != nil {
			return reject(StatusInternal, "stats: %v", err)
		}
		return c.send(outMsg{m: &Message{Op: m.Op, ID: m.ID, Payload: payload}})
	case OpRSEncode:
		if bad, why := c.badRSLen(len(m.Payload), iv.FrameK()); bad {
			return reject(StatusBadRequest, "rs-encode payload %dB, want %s of k×depth = %dB",
				len(m.Payload), why, iv.FrameK())
		}
		return c.submit(m, m.Payload, tc, readAt)
	case OpRSDecode:
		if bad, why := c.badRSLen(len(m.Payload), iv.FrameN()); bad {
			return reject(StatusBadRequest, "rs-decode payload %dB, want %s of n×depth = %dB",
				len(m.Payload), why, iv.FrameN())
		}
		return c.submit(m, m.Payload, tc, readAt)
	case OpSeal, OpOpen:
		if len(m.Params) != NonceSize {
			return reject(StatusBadRequest, "%v params %dB, want %d-byte nonce",
				m.Op, len(m.Params), NonceSize)
		}
		if m.Op == OpOpen && len(m.Payload) < aes.BlockSize {
			return reject(StatusCodecFailed, "aes-gcm-open payload %dB shorter than the tag",
				len(m.Payload))
		}
		// The frame carries nonce‖body; the dispatch stage splits them.
		data := make([]byte, NonceSize+len(m.Payload))
		copy(data, m.Params)
		copy(data[NonceSize:], m.Payload)
		return c.submit(m, data, tc, readAt)
	case OpECDHDerive, OpECDSASign, OpECDSAVerify, OpSecureSession:
		svc := c.s.ecc
		if svc == nil {
			return reject(StatusUnsupported, "%v: ecc ops disabled (curve=%s)", m.Op, CurveOff)
		}
		if why := svc.validateECC(m.Op, len(m.Payload)); why != "" {
			return reject(StatusBadRequest, "%s", why)
		}
		return c.submit(m, m.Payload, tc, readAt)
	default:
		return reject(StatusUnsupported, "unknown op %d", uint8(m.Op))
	}
}

// badRSLen validates an RS request payload length against the frame
// unit: exactly one unit with Batch 1 (the strict contract), otherwise
// a positive multiple of the unit up to Batch units per request. The
// returned description names the expectation for the rejection message.
func (c *conn) badRSLen(n, unit int) (bad bool, why string) {
	if b := c.s.cfg.Batch; b > 1 {
		return n == 0 || n%unit != 0 || n > b*unit,
			fmt.Sprintf("a positive multiple (max %d)", b)
	}
	return n != unit, "exactly 1×"
}

// submit pushes one request into the shared pipeline, tagged with its
// op (as the frame epoch) and routing state. A sampled trace context
// mints this hop's request-span id and force-samples the frame so the
// pipeline records its per-stage lifecycle.
func (c *conn) submit(m *Message, data []byte, tc trace.Context, readAt time.Time) bool {
	pr := &pendingReq{c: c, op: m.Op, id: m.ID, tc: tc, read: readAt}
	if tc.Sampled {
		pr.span = trace.NewID()
	}
	pr.submitted = time.Now()
	c.s.inflight.Add(1)
	_, err := c.s.run.SubmitTracedChecked(data, int(m.Op), pr, tc.Sampled)
	if err != nil {
		c.s.inflight.Done()
		c.send(outMsg{m: &Message{Op: m.Op, Status: StatusShuttingDown, ID: m.ID,
			Payload: []byte("server draining")}})
		return false
	}
	return true
}

// send enqueues a reader-originated response (stats, rejections)
// through the same routing gate the dispatcher uses. The window slot
// the reader holds guarantees queue room, so the full-queue retry is a
// safety net, not a steady state. Returns false once the connection is
// dead.
func (c *conn) send(om outMsg) bool {
	for {
		switch c.route(om) {
		case routeOK:
			return true
		case routeClosed:
			if !om.unled {
				c.s.ctr.dropped.Add(1)
			}
			return false
		case routeFull:
			select {
			case <-c.dead: // writer is tearing down; next route sees closed
			case <-time.After(time.Millisecond):
			}
		}
	}
}

// writeLoop serializes responses onto the socket. On drain (graceful
// shutdown) it flushes everything queued before closing; on dead it
// exits immediately. The deferred close also unblocks the read loop.
func (c *conn) writeLoop() {
	defer c.s.writerWG.Done()
	defer c.s.removeConn(c)
	defer c.nc.Close()
	for {
		select {
		case om := <-c.writeq:
			c.write(om)
		case <-c.dead:
			c.closeWriteq()
			c.drainRecycle()
			return
		case <-c.lame:
			// Poisoned stream: bar further routing (late dispatcher
			// responses are counted dropped at the route gate), write out
			// what is already queued — the framing-error reply — and close.
			c.closeWriteq()
			for {
				select {
				case om := <-c.writeq:
					c.write(om)
				default:
					c.bw.Flush()
					return
				}
			}
		case <-c.drain:
			// In-flight is globally drained: everything this connection
			// will ever get is already queued.
			for {
				select {
				case om := <-c.writeq:
					c.write(om)
				default:
					c.bw.Flush()
					return
				}
			}
		}
	}
}

// drainRecycle accounts for and releases responses abandoned by an
// error teardown: they were routed but will never reach the client.
func (c *conn) drainRecycle() {
	for {
		select {
		case om := <-c.writeq:
			if om.f != nil {
				om.f.Recycle()
			}
			c.account(om, false)
		default:
			return
		}
	}
}

// account classifies one ledgered response at its terminal point. Every
// counted request reaches exactly one terminal: responses (an OK reply
// hit the wire), rejects (an error-status reply hit the wire) or
// dropped (no reply ever written) — disjoint by construction, so
// requests == responses + rejects + dropped once the server quiesces.
func (c *conn) account(om outMsg, written bool) {
	if om.unled {
		return
	}
	switch {
	case !written:
		c.s.ctr.dropped.Add(1)
	case om.m.Status == StatusOK:
		c.s.ctr.responses.Add(1)
	default:
		c.s.ctr.rejects.Add(1)
	}
}

// write puts one response on the wire (buffered; flushed when the queue
// momentarily empties), releases its window slot, and recycles the
// backing frame. After a write error the connection is failed and
// further writes are dropped.
func (c *conn) write(om outMsg) {
	written := false
	if !c.broken {
		if wt := c.s.cfg.WriteTimeout; wt > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(wt))
		}
		err := writeMessage(c.bw, om.m)
		if err == nil && len(c.writeq) == 0 {
			err = c.bw.Flush()
		}
		if err != nil {
			c.broken = true
			c.s.logf("server: write to %v: %v", c.nc.RemoteAddr(), err)
			c.fail()
		} else {
			written = true
			c.s.ctr.bytesOut.Add(int64(headerSize + len(om.m.Params) + len(om.m.Payload)))
		}
	}
	c.account(om, written)
	if om.pr != nil {
		c.s.finishRequest(c, om, written)
	}
	if om.f != nil {
		om.f.Recycle()
	}
	select {
	case <-c.sem:
	default: // conn-fatal replies are sent without a slot
	}
}

// finishRequest closes the observability books on one pipeline-served
// request at its terminal point in the write loop: per-op latency (with
// a trace exemplar), SLO accounting, span recording and the wide event.
// Reader-path replies (stats, rejections) never reach the pipeline and
// are deliberately excluded — the latency ledger measures the datapath.
func (s *Server) finishRequest(c *conn, om outMsg, written bool) {
	pr := om.pr
	now := time.Now()
	lat := now.Sub(pr.read)
	if int(pr.op) < len(s.opLat) {
		s.opLat[pr.op].Observe(lat)
		if pr.tc.Sampled {
			s.opEx[pr.op].Record(pr.tc.Trace, int64(lat))
		}
	}
	s.cfg.SLO.Observe(pr.op.String(), c.tenant, lat)
	if pr.tc.Sampled {
		s.recordSpans(c, pr, om.m.Status, written, now)
	}
	s.wideEvent(c, pr, om.m.Status, written, lat)
}

// recordSpans turns one traced request's hop timestamps into spans on
// the /tracez ring: the request envelope (read to response written),
// admission (window wait and validation before the pipeline accepted
// the frame), the per-stage pipeline lifecycle, and write-back
// (response routed to written).
func (s *Server) recordSpans(c *conn, pr *pendingReq, st Status, written bool, now time.Time) {
	traceID := trace.FormatID(pr.tc.Trace)
	reqID := trace.FormatID(pr.span)
	parent := ""
	if pr.tc.Span != 0 {
		parent = trace.FormatID(pr.tc.Span)
	}
	status := ""
	switch {
	case !written:
		status = "dropped"
	case st != StatusOK:
		status = st.String()
	}
	s.spans.Add(trace.Span{
		Trace: traceID, ID: reqID, Parent: parent,
		Service: "gfserved", Name: "request", Op: pr.op.String(),
		StartUnixNs: pr.read.UnixNano(), DurNs: now.Sub(pr.read).Nanoseconds(),
		Status: status,
		Attrs:  map[string]string{"peer": c.nc.RemoteAddr().String()},
	})
	s.spans.Add(trace.Span{
		Trace: traceID, ID: trace.FormatID(trace.NewID()), Parent: reqID,
		Service: "gfserved", Name: "admission", Op: pr.op.String(),
		StartUnixNs: pr.read.UnixNano(), DurNs: pr.submitted.Sub(pr.read).Nanoseconds(),
	})
	if pr.hasFT {
		if t := s.pl.Tracer(); t != nil {
			base := t.Base()
			for _, ss := range pr.ft.Spans {
				if ss.EnqNs == 0 || ss.FinNs == 0 {
					continue
				}
				s.spans.Add(trace.Span{
					Trace: traceID, ID: trace.FormatID(trace.NewID()), Parent: reqID,
					Service: "gfserved", Name: "stage:" + ss.Stage, Op: pr.op.String(),
					StartUnixNs: base.Add(time.Duration(ss.EnqNs)).UnixNano(),
					DurNs:       ss.FinNs - ss.EnqNs,
					Attrs: map[string]string{
						"queue_wait_ns": strconv.FormatInt(ss.QueueWaitNs, 10),
						"service_ns":    strconv.FormatInt(ss.ServiceNs, 10),
					},
				})
			}
		}
	}
	wb := trace.Span{
		Trace: traceID, ID: trace.FormatID(trace.NewID()), Parent: reqID,
		Service: "gfserved", Name: "write-back", Op: pr.op.String(),
		StartUnixNs: pr.routed.UnixNano(), DurNs: now.Sub(pr.routed).Nanoseconds(),
	}
	if !written {
		wb.Status = "dropped"
	}
	s.spans.Add(wb)
}

// wideEvent emits the one-line structured record of a completed
// request: every trace-sampled request, plus one in every WideEvery
// untraced completions.
func (s *Server) wideEvent(c *conn, pr *pendingReq, st Status, written bool, lat time.Duration) {
	lg := s.cfg.WideLog
	if lg == nil {
		return
	}
	if !pr.tc.Sampled {
		every := uint64(s.cfg.WideEvery)
		if every == 0 || s.wideTick.Add(1)%every != 0 {
			return
		}
	}
	attrs := []slog.Attr{
		slog.String("service", "gfserved"),
		slog.String("op", pr.op.String()),
		slog.String("tenant", c.tenant),
		slog.String("status", st.String()),
		slog.Bool("written", written),
		slog.Int64("latency_ns", int64(lat)),
	}
	if pr.tc.Sampled {
		attrs = append(attrs,
			slog.String("trace", trace.FormatID(pr.tc.Trace)),
			slog.String("span", trace.FormatID(pr.span)))
	}
	lg.LogAttrs(context.Background(), slog.LevelInfo, "request", attrs...)
}
