package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/gf"
)

// startServer spins up a server on a loopback listener and returns it
// with its address; cleanup shuts it down.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) // double-shutdown in tests that already did: reports error, harmless
		select {
		case err := <-serveDone:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return s, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestRoundTripOps: every op round-trips through a live server.
func TestRoundTripOps(t *testing.T) {
	s, addr := startServer(t, Config{N: 255, K: 239, Depth: 2, Workers: 2})
	c := dialT(t, addr)

	msg := make([]byte, s.Code().FrameK())
	rand.New(rand.NewSource(1)).Read(msg)
	cw, err := c.RSEncode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != s.Code().FrameN() {
		t.Fatalf("codeword %dB, want %d", len(cw), s.Code().FrameN())
	}
	// Corrupt within the correction bound, then decode back.
	cw[0] ^= 0xff
	cw[300] ^= 0x55
	got, err := c.RSDecode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("rs round trip mismatch")
	}

	nonce := bytes.Repeat([]byte{9}, NonceSize)
	sealed, err := c.Seal(nonce, []byte("attack at dawn"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := c.Open(nonce, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "attack at dawn" {
		t.Fatalf("gcm round trip: %q", pt)
	}
	// Tampered ciphertext must fail with a codec status, not kill the
	// connection.
	sealed[0] ^= 1
	if _, err := c.Open(nonce, sealed); err == nil {
		t.Fatal("tampered open succeeded")
	} else {
		var se *StatusError
		if !errors.As(err, &se) || se.Status != StatusCodecFailed {
			t.Fatalf("tampered open: %v, want StatusCodecFailed", err)
		}
	}

	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Config.K != 239 || snap.Config.FrameK != 478 {
		t.Errorf("stats config %+v", snap.Config)
	}
	if snap.Server.Requests < 5 {
		t.Errorf("stats requests = %d, want >= 5", snap.Server.Requests)
	}
	if len(snap.Stages) != 1 || snap.Stages[0].Name != "codec-dispatch" {
		t.Errorf("stats stages %+v", snap.Stages)
	}
}

// TestBatchedRequests: with Config.Batch > 1 a single request may pack
// several interleaver frames. One request stays one pipeline frame and
// one window slot, so the request/response ledger counts it once, and a
// Window's worth of maximum-width pipelined requests still completes
// (the batch must not consume extra slots and wedge the window).
func TestBatchedRequests(t *testing.T) {
	const window = 2
	s, addr := startServer(t, Config{N: 255, K: 239, Depth: 2, Workers: 2, Batch: 4, Window: window})
	c := dialT(t, addr)

	unit := s.Code().FrameK()
	msg := make([]byte, 3*unit) // batched, below the 4-unit cap
	rand.New(rand.NewSource(3)).Read(msg)
	cw, err := c.RSEncode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != 3*s.Code().FrameN() {
		t.Fatalf("batched codeword %dB, want %d", len(cw), 3*s.Code().FrameN())
	}
	cw[0] ^= 0xff
	cw[s.Code().FrameN()+17] ^= 0x55 // error in the second frame of the batch
	got, err := c.RSDecode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("batched rs round trip mismatch")
	}

	// Over-wide and ragged payloads are rejected without poisoning the
	// connection.
	if _, err := c.RSEncode(make([]byte, 5*unit)); err == nil {
		t.Fatal("payload above the batch cap accepted")
	}
	if _, err := c.RSEncode(make([]byte, unit+1)); err == nil {
		t.Fatal("ragged payload accepted")
	}

	// Saturate the window with maximum-width requests: completion proves
	// a batched request holds exactly one slot.
	var wg sync.WaitGroup
	errs := make([]error, 2*window)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			full := make([]byte, 4*unit)
			rand.New(rand.NewSource(int64(100 + i))).Read(full)
			out, err := c.RSEncode(full)
			if err == nil && len(out) != 4*s.Code().FrameN() {
				err = fmt.Errorf("full-width response %dB", len(out))
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("pipelined batched request %d: %v", i, err)
		}
	}

	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Config.Batch != 4 {
		t.Errorf("stats batch = %d, want 4", snap.Config.Batch)
	}
	// Ledger: encode + decode + 2 rejects + 2*window full-width + stats.
	wantReq := int64(2 + 2 + 2*window + 1)
	if snap.Server.Requests != wantReq {
		t.Errorf("requests = %d, want %d (one per request regardless of width)",
			snap.Server.Requests, wantReq)
	}
	if snap.Server.Rejects != 2 {
		t.Errorf("rejects = %d, want 2", snap.Server.Rejects)
	}
}

// TestConcurrentClients hammers one server from many connections with
// pipelined round trips through a noisy channel — the -race workout for
// the whole mux/dispatch path.
func TestConcurrentClients(t *testing.T) {
	const conns, perConn, window = 4, 8, 4
	s, addr := startServer(t, Config{N: 255, K: 223, Depth: 1, Window: window})
	_ = s
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr, time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			var inner sync.WaitGroup
			for w := 0; w < window; w++ {
				inner.Add(1)
				go func(w int) {
					defer inner.Done()
					// Channel models hold private RNG state, so each
					// worker corrupts through its own instance.
					ch, err := channel.NewBSC(0.004, int64(ci*100+w+1))
					if err != nil {
						errs <- err
						return
					}
					rng := rand.New(rand.NewSource(int64(ci*100 + w)))
					for i := 0; i < perConn; i++ {
						msg := make([]byte, 223)
						rng.Read(msg)
						cw, err := c.RSEncode(msg)
						if err != nil {
							errs <- fmt.Errorf("conn %d: encode: %w", ci, err)
							return
						}
						corrupted := corruptBytes(ch, cw)
						got, err := c.RSDecode(corrupted)
						if err != nil {
							// The channel occasionally lands past t errors:
							// an uncorrectable word must come back as a
							// structured codec failure, nothing else.
							var se *StatusError
							if errors.As(err, &se) && se.Status == StatusCodecFailed {
								continue
							}
							errs <- fmt.Errorf("conn %d: decode: %w", ci, err)
							return
						}
						if !bytes.Equal(got, msg) {
							errs <- fmt.Errorf("conn %d: round trip mismatch", ci)
							return
						}
					}
				}(w)
			}
			inner.Wait()
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// corruptBytes pushes a byte frame through a channel model (8-bit
// symbols), client-side.
func corruptBytes(ch channel.Channel, b []byte) []byte {
	syms := make([]gf.Elem, len(b))
	for i, v := range b {
		syms[i] = gf.Elem(v)
	}
	out := channel.TransmitSymbols(ch, syms, 8)
	res := make([]byte, len(out))
	for i, v := range out {
		res[i] = byte(v)
	}
	return res
}

// TestStructuredErrors: bad requests get status replies on a connection
// that keeps working afterwards.
func TestStructuredErrors(t *testing.T) {
	_, addr := startServer(t, Config{N: 255, K: 239, Depth: 1})
	c := dialT(t, addr)

	checkStatus := func(err error, want Status) {
		t.Helper()
		var se *StatusError
		if !errors.As(err, &se) {
			t.Fatalf("err = %v, want *StatusError", err)
		}
		if se.Status != want {
			t.Fatalf("status %v, want %v", se.Status, want)
		}
	}
	_, err := c.RSEncode(make([]byte, 10)) // wrong message size
	checkStatus(err, StatusBadRequest)
	_, err = c.Call(OpSeal, []byte("shortnonce"), []byte("x"))
	checkStatus(err, StatusBadRequest)
	_, err = c.Call(Op(77), nil, nil)
	checkStatus(err, StatusUnsupported)
	// Uncorrectable word: valid length, too many errors.
	junk := make([]byte, 255)
	rand.New(rand.NewSource(7)).Read(junk)
	_, err = c.RSDecode(junk)
	checkStatus(err, StatusCodecFailed)

	// The connection survived all of the above.
	msg := make([]byte, 239)
	if _, err := c.RSEncode(msg); err != nil {
		t.Fatalf("connection dead after error replies: %v", err)
	}
}

// TestMalformedFrames: framing violations get a status reply and then
// the connection is closed (the stream cannot be resynchronized).
func TestMalformedFrames(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(hdr []byte)
		want   Status
	}{
		{"bad magic", func(h []byte) { h[0] = 'Z' }, StatusBadRequest},
		{"bad version", func(h []byte) { h[4] = 9 }, StatusUnsupported},
		{"oversized", func(h []byte) { binary.BigEndian.PutUint32(h[20:], 1<<31) }, StatusTooLarge},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, addr := startServer(t, Config{N: 255, K: 239, Depth: 1})
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer nc.Close()
			var buf bytes.Buffer
			if err := writeMessage(&buf, &Message{Op: OpRSEncode, ID: 1, Payload: make([]byte, 239)}); err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()
			tc.mutate(raw)
			if _, err := nc.Write(raw); err != nil {
				t.Fatal(err)
			}
			nc.SetReadDeadline(time.Now().Add(2 * time.Second))
			m, err := readMessage(nc, DefaultMaxPayload)
			if err != nil {
				t.Fatalf("no error reply: %v", err)
			}
			if m.Status != tc.want {
				t.Fatalf("reply status %v, want %v", m.Status, tc.want)
			}
			// Then the server closes the connection.
			if _, err := readMessage(nc, DefaultMaxPayload); err == nil {
				t.Fatal("connection still open after framing violation")
			}
		})
	}
}

// TestTruncatedFrameDisconnect: a client that dies mid-frame (header
// promised more bytes than were sent) must not wedge the server.
func TestTruncatedFrameDisconnect(t *testing.T) {
	_, addr := startServer(t, Config{N: 255, K: 239, Depth: 1})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeMessage(&buf, &Message{Op: OpRSEncode, ID: 1, Payload: make([]byte, 239)}); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(buf.Bytes()[:headerSize+100]); err != nil {
		t.Fatal(err)
	}
	nc.Close() // mid-request disconnect

	// The server is still fully alive for other clients.
	c := dialT(t, addr)
	if _, err := c.RSEncode(make([]byte, 239)); err != nil {
		t.Fatalf("server wedged after truncated frame: %v", err)
	}
}

// TestMidFlightDisconnect: a client disconnecting with requests still
// in flight must not break the pipeline or other connections.
func TestMidFlightDisconnect(t *testing.T) {
	s, addr := startServer(t, Config{N: 255, K: 239, Depth: 1, Window: 16})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Fire a burst of valid encodes and hang up without reading replies.
	var buf bytes.Buffer
	for i := 0; i < 16; i++ {
		if err := writeMessage(&buf, &Message{Op: OpRSEncode, ID: uint64(i), Payload: make([]byte, 239)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nc.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	nc.Close()

	// Survivor connection keeps working.
	c := dialT(t, addr)
	for i := 0; i < 5; i++ {
		if _, err := c.RSEncode(make([]byte, 239)); err != nil {
			t.Fatalf("server wedged after mid-flight disconnect: %v", err)
		}
	}
	// How many of the burst the server framed before the RST killed the
	// socket is timing-dependent, but its own accounting must settle:
	// every framed request ends up answered or counted dropped, none
	// leak. The survivor's 5 responses are part of the same ledger.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := s.Snapshot()
		if snap.Server.Requests >= 5 &&
			snap.Server.Responses+snap.Server.Rejects+snap.Server.Dropped == snap.Server.Requests {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting never settled: framed %d, responses %d, rejects %d, dropped %d",
				snap.Server.Requests, snap.Server.Responses, snap.Server.Rejects, snap.Server.Dropped)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGracefulShutdownDrain: every request accepted before Shutdown is
// answered exactly once before the connections close — no lost, no
// duplicated responses.
func TestGracefulShutdownDrain(t *testing.T) {
	const conns, window, batch = 4, 8, 24
	s, addr := startServer(t, Config{N: 255, K: 239, Depth: 1, Window: window, Workers: 2})

	type connState struct {
		c    *Client
		errs chan error
		wg   sync.WaitGroup
	}
	var clients []*connState
	var started sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		cs := &connState{errs: make(chan error, batch)}
		c, err := Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cs.c = c
		clients = append(clients, cs)
		for w := 0; w < batch; w++ {
			cs.wg.Add(1)
			started.Add(1)
			go func(w int) {
				defer cs.wg.Done()
				msg := make([]byte, 239)
				started.Done()
				_, err := cs.c.RSEncode(msg)
				// Accepted-then-drained responses succeed; requests that
				// arrive after the drain line get a clean shutdown status
				// or a closed connection — both acceptable, silence is not.
				if err != nil {
					var se *StatusError
					if errors.As(err, &se) && se.Status == StatusShuttingDown {
						err = nil
					}
				}
				cs.errs <- err
			}(w)
		}
	}
	started.Wait() // every goroutine is at (or past) its send

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Per request the acceptable outcomes are: answered (the drain
	// guarantee), a clean shutting-down status (converted to nil above),
	// or connection-lost for a request the server never framed. What
	// must not happen is silence for a framed request — checked below
	// via the server's own accounting.
	answered := 0
	for _, cs := range clients {
		cs.wg.Wait()
		close(cs.errs)
		for err := range cs.errs {
			if err == nil {
				answered++
			}
		}
		cs.c.Close()
	}
	if answered == 0 {
		t.Fatal("graceful shutdown answered nothing")
	}
	snap := s.Snapshot()
	// Every request the server framed got exactly one reply written — an
	// OK response for requests accepted before the drain line, a
	// shutting-down reject for ones framed after it. Nothing lost,
	// nothing abandoned.
	if snap.Server.Responses+snap.Server.Rejects != snap.Server.Requests {
		t.Errorf("framed %d requests but wrote %d responses + %d rejects",
			snap.Server.Requests, snap.Server.Responses, snap.Server.Rejects)
	}
	if snap.Server.Dropped != 0 {
		t.Errorf("drained shutdown dropped %d responses", snap.Server.Dropped)
	}
	if snap.Server.ConnsActive != 0 {
		t.Errorf("%d connections still active after Shutdown", snap.Server.ConnsActive)
	}
}

// TestShutdownIdleServer: shutdown with no connections returns promptly.
func TestShutdownIdleServer(t *testing.T) {
	s, _ := startServer(t, Config{N: 255, K: 239, Depth: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestNewRejectsBadConfig: codec parameter validation happens up front.
func TestNewRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{N: -1, K: 3}, {N: 255, K: 255}, {N: 255, K: 300}, {N: 255, K: 239, Depth: -2},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted", cfg)
		}
	}
}
