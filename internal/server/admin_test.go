package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestLedgerConsistencyUnderShutdown hammers the server with many
// concurrent clients while a poller takes snapshots the whole time —
// including through a mid-load Shutdown. Every live snapshot must
// satisfy the ledger inequality Requests >= Responses+Rejects+Dropped
// (a violation means a torn read or double count), and after Shutdown
// returns the ledger must balance exactly.
func TestLedgerConsistencyUnderShutdown(t *testing.T) {
	const conns = 6
	s, addr := startServer(t, Config{N: 255, K: 239, Depth: 1, Window: 8, Workers: 2})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, time.Second)
			if err != nil {
				return // server may already be draining
			}
			defer c.Close()
			msg := make([]byte, 239)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.RSEncode(msg); err != nil {
					return // reject or dead conn ends this client
				}
			}
		}()
	}

	// Poller: snapshots race the clients and the shutdown below.
	var violations atomic.Int64
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := s.Snapshot().Server
			if c.Requests < c.Responses+c.Rejects+c.Dropped {
				violations.Add(1)
			}
		}
	}()

	// Let real traffic build up before pulling the plug.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if s.Snapshot().Server.Requests >= conns {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("load never ramped")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	<-pollDone

	if n := violations.Load(); n != 0 {
		t.Errorf("%d snapshots violated Requests >= Responses+Rejects+Dropped", n)
	}
	c := s.Snapshot().Server
	if got := c.Responses + c.Rejects + c.Dropped; got != c.Requests {
		t.Errorf("ledger unbalanced after shutdown: requests %d != responses %d + rejects %d + dropped %d",
			c.Requests, c.Responses, c.Rejects, c.Dropped)
	}
}

// TestAdminEndpoints exercises the full admin surface against a live
// server: /healthz flips 200 -> 503 across Shutdown, /metrics serves
// valid exposition covering the server ledger, pipeline stages and
// kernel tiers, and /statsz is a JSON superset of the stats op.
func TestAdminEndpoints(t *testing.T) {
	s, addr := startServer(t, Config{
		N: 255, K: 239, Depth: 1, Window: 4, Workers: 2,
		TraceEvery: 1, TraceSlowest: 4,
	})
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	admin := httptest.NewServer(s.AdminHandler(reg))
	defer admin.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(admin.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, _ := get("/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}

	c := dialT(t, addr)
	for i := 0; i < 8; i++ {
		if _, err := c.RSEncode(make([]byte, 239)); err != nil {
			t.Fatal(err)
		}
	}

	code, body, ct := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct != obs.ContentType {
		t.Errorf("/metrics content type = %q, want %q", ct, obs.ContentType)
	}
	for _, want := range []string{
		"gfp_server_requests_total 8",
		"gfp_server_responses_total 8",
		`gfp_server_info{code="RS(255,239)",depth="1"} 1`,
		`gfp_pipeline_stage_frames_total{stage="codec-dispatch"} 8`,
		`gfp_model_ops_total{class="gf_op",stage="codec-dispatch"}`,
		`gfp_gf_kernel_calls_total{tier="table"}`,
		`gfp_pipeline_stage_queue_wait_seconds_count{stage="codec-dispatch"} 8`,
		"gfp_pipeline_traced_frames_total 8",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body, ct = get("/statsz")
	if code != http.StatusOK {
		t.Fatalf("/statsz = %d", code)
	}
	if ct != "application/json" {
		t.Errorf("/statsz content type = %q", ct)
	}
	var sz struct {
		Server  Counters          `json:"server"`
		Metrics []json.RawMessage `json:"metrics"`
		Traces  []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &sz); err != nil {
		t.Fatalf("/statsz not JSON: %v", err)
	}
	if sz.Server.Requests != 8 || sz.Server.Responses != 8 {
		t.Errorf("/statsz ledger = %+v, want 8 requests/responses", sz.Server)
	}
	if len(sz.Metrics) == 0 {
		t.Error("/statsz has no metrics array")
	}
	if len(sz.Traces) == 0 {
		t.Error("/statsz has no traces despite TraceEvery=1")
	}

	if code, _, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code, _, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz after shutdown = %d, want 503", code)
	}
}

// TestHealthyBeforeServe: a constructed-but-not-served server is not
// healthy yet.
func TestHealthyBeforeServe(t *testing.T) {
	s, err := New(Config{N: 255, K: 239, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	if err := s.Healthy(); err == nil {
		t.Error("Healthy() = nil before Serve")
	}
}
