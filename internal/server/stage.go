package server

import (
	crand "crypto/rand"
	"fmt"
	"time"

	"repro/internal/aes"
	"repro/internal/ecc"
	"repro/internal/pipeline"
)

// dispatchStage is the single stage of the server's shared pipeline: it
// routes each frame to the codec op encoded in Frame.Epoch. Multiplexing
// every op through one stage (instead of one pipeline per op) keeps a
// single worker pool hot regardless of the op mix.
//
// It implements pipeline.WorkerLocal so each worker gets private RS
// scratch (the underlying RS stages are WorkerLocal) and its own clone
// of the ECC engine; the GCM instance is immutable after construction
// and shared, as are the eccService counters (atomics).
type dispatchStage struct {
	enc, dec pipeline.Stage
	gcm      *aes.GCM
	aad      []byte
	ecc      *eccService // nil when the ECC ops are disabled
	eccEng   *ecc.Engine // this worker's engine clone
}

// Name implements pipeline.Stage.
func (d *dispatchStage) Name() string { return "codec-dispatch" }

// ForWorker implements pipeline.WorkerLocal.
func (d *dispatchStage) ForWorker(w int) pipeline.Stage {
	cp := *d
	if wl, ok := d.enc.(pipeline.WorkerLocal); ok {
		cp.enc = wl.ForWorker(w)
	}
	if wl, ok := d.dec.(pipeline.WorkerLocal); ok {
		cp.dec = wl.ForWorker(w)
	}
	if d.ecc != nil {
		cp.eccEng = d.ecc.eng.Clone()
	}
	return &cp
}

// Process implements pipeline.Stage. Seal/open frames carry nonce‖body
// (the nonce is client-chosen so the peer can reconstruct it; the
// server is a codec, not a key manager — nonce uniqueness is the
// client's contract, as with any GCM API).
func (d *dispatchStage) Process(f *pipeline.Frame) error {
	switch Op(f.Epoch) {
	case OpRSEncode:
		return d.enc.Process(f)
	case OpRSDecode:
		return d.dec.Process(f)
	case OpSeal:
		out, err := d.gcm.Seal(f.Data[:NonceSize], f.Data[NonceSize:], d.aad)
		if err != nil {
			return err
		}
		f.Data = out
		return nil
	case OpOpen:
		out, err := d.gcm.Open(f.Data[:NonceSize], f.Data[NonceSize:], d.aad)
		if err != nil {
			return err
		}
		f.Data = out
		return nil
	case OpECDHDerive, OpECDSASign, OpECDSAVerify, OpSecureSession:
		if d.eccEng == nil {
			return fmt.Errorf("server: ecc op %v with ecc disabled", Op(f.Epoch))
		}
		return d.processECC(f)
	default:
		return fmt.Errorf("server: unroutable op %d", f.Epoch)
	}
}

// processECC runs one ECC frame on this worker's engine clone. The
// derive/sign paths append into f.Data[:0]: the engine fully consumes
// its input (point parse, digest absorption) before the first output
// byte is written, so reusing the frame's pooled buffer is safe and
// keeps the steady-state request allocation-free at the engine layer.
func (d *dispatchStage) processECC(f *pipeline.Frame) error {
	svc, e := d.ecc, d.eccEng
	switch Op(f.Epoch) {
	case OpECDHDerive:
		start := time.Now()
		out, err := e.Derive(f.Data[:0], f.Data)
		if err != nil {
			svc.failures.Add(1)
			return err
		}
		svc.deriveLat.Observe(time.Since(start))
		svc.derives.Add(1)
		f.Data = out
		return nil
	case OpECDSASign:
		start := time.Now()
		out, err := e.SignAppend(f.Data[:0], f.Data)
		if err != nil {
			svc.failures.Add(1)
			return err
		}
		svc.signLat.Observe(time.Since(start))
		svc.signs.Add(1)
		f.Data = out
		return nil
	case OpECDSAVerify:
		pb, ob := e.PointBytes(), e.OrderBytes()
		pub := f.Data[:pb]
		sig := f.Data[pb : pb+2*ob]
		digest := f.Data[pb+2*ob:]
		if err := e.VerifyWire(pub, sig, digest); err != nil {
			svc.failures.Add(1)
			return err
		}
		svc.verifies.Add(1)
		f.Data = f.Data[:0] // the OK status is the verdict
		return nil
	default: // OpSecureSession
		pb := e.PointBytes()
		out, err := e.SecureSession(crand.Reader, f.Data[:0], f.Data[:pb], f.Data[pb:])
		if err != nil {
			svc.failures.Add(1)
			return err
		}
		svc.sessions.Add(1)
		f.Data = out
		return nil
	}
}
