package server

import (
	"fmt"

	"repro/internal/aes"
	"repro/internal/pipeline"
)

// dispatchStage is the single stage of the server's shared pipeline: it
// routes each frame to the codec op encoded in Frame.Epoch. Multiplexing
// every op through one stage (instead of one pipeline per op) keeps a
// single worker pool hot regardless of the op mix.
//
// It implements pipeline.WorkerLocal so each worker gets private RS
// scratch (the underlying RS stages are WorkerLocal); the GCM instance
// is immutable after construction and shared.
type dispatchStage struct {
	enc, dec pipeline.Stage
	gcm      *aes.GCM
	aad      []byte
}

// Name implements pipeline.Stage.
func (d *dispatchStage) Name() string { return "codec-dispatch" }

// ForWorker implements pipeline.WorkerLocal.
func (d *dispatchStage) ForWorker(w int) pipeline.Stage {
	cp := *d
	if wl, ok := d.enc.(pipeline.WorkerLocal); ok {
		cp.enc = wl.ForWorker(w)
	}
	if wl, ok := d.dec.(pipeline.WorkerLocal); ok {
		cp.dec = wl.ForWorker(w)
	}
	return &cp
}

// Process implements pipeline.Stage. Seal/open frames carry nonce‖body
// (the nonce is client-chosen so the peer can reconstruct it; the
// server is a codec, not a key manager — nonce uniqueness is the
// client's contract, as with any GCM API).
func (d *dispatchStage) Process(f *pipeline.Frame) error {
	switch Op(f.Epoch) {
	case OpRSEncode:
		return d.enc.Process(f)
	case OpRSDecode:
		return d.dec.Process(f)
	case OpSeal:
		out, err := d.gcm.Seal(f.Data[:NonceSize], f.Data[NonceSize:], d.aad)
		if err != nil {
			return err
		}
		f.Data = out
		return nil
	case OpOpen:
		out, err := d.gcm.Open(f.Data[:NonceSize], f.Data[NonceSize:], d.aad)
		if err != nil {
			return err
		}
		f.Data = out
		return nil
	default:
		return fmt.Errorf("server: unroutable op %d", f.Epoch)
	}
}
