package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// TestMessageRoundTrip: write → read must be the identity for every
// field, including empty params/payload.
func TestMessageRoundTrip(t *testing.T) {
	cases := []*Message{
		{Op: OpRSEncode, ID: 0, Payload: []byte("hello")},
		{Op: OpSeal, ID: 1<<64 - 1, Params: bytes.Repeat([]byte{7}, NonceSize), Payload: []byte{}},
		{Op: OpStats, Status: StatusShuttingDown, ID: 42},
	}
	for _, want := range cases {
		var buf bytes.Buffer
		if err := writeMessage(&buf, want); err != nil {
			t.Fatalf("write %v: %v", want.Op, err)
		}
		got, err := readMessage(&buf, DefaultMaxPayload)
		if err != nil {
			t.Fatalf("read %v: %v", want.Op, err)
		}
		if got.Op != want.Op || got.Status != want.Status || got.ID != want.ID ||
			!bytes.Equal(got.Params, want.Params) || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("round trip %+v -> %+v", want, got)
		}
	}
}

// TestReadMessageRejects: framing violations must come back as typed
// protocol errors carrying the right status.
func TestReadMessageRejects(t *testing.T) {
	frame := func(mutate func(hdr []byte)) []byte {
		var buf bytes.Buffer
		if err := writeMessage(&buf, &Message{Op: OpRSEncode, ID: 9, Payload: []byte("abc")}); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		mutate(b)
		return b
	}
	cases := []struct {
		name string
		raw  []byte
		want Status
	}{
		{"bad magic", frame(func(h []byte) { h[0] = 'X' }), StatusBadRequest},
		{"bad version", frame(func(h []byte) { h[4] = 99 }), StatusUnsupported},
		{"oversized params", frame(func(h []byte) {
			binary.BigEndian.PutUint32(h[16:], MaxParams+1)
		}), StatusTooLarge},
		{"oversized payload", frame(func(h []byte) {
			binary.BigEndian.PutUint32(h[20:], 1<<30)
		}), StatusTooLarge},
	}
	for _, tc := range cases {
		_, err := readMessage(bytes.NewReader(tc.raw), DefaultMaxPayload)
		var pe *ProtoError
		if !errors.As(err, &pe) {
			t.Errorf("%s: err = %v, want *ProtoError", tc.name, err)
			continue
		}
		if pe.Status != tc.want {
			t.Errorf("%s: status %v, want %v", tc.name, pe.Status, tc.want)
		}
	}
}

// TestReadMessageTruncated: EOF cleanly between messages is io.EOF; EOF
// anywhere inside one is ErrUnexpectedEOF.
func TestReadMessageTruncated(t *testing.T) {
	if _, err := readMessage(bytes.NewReader(nil), DefaultMaxPayload); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
	var buf bytes.Buffer
	if err := writeMessage(&buf, &Message{Op: OpRSDecode, ID: 3, Payload: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, headerSize - 1, headerSize, len(full) - 1} {
		_, err := readMessage(bytes.NewReader(full[:cut]), DefaultMaxPayload)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestOpStatusStrings: every named op and status has a stable label.
func TestOpStatusStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpRSEncode: "rs-encode", OpRSDecode: "rs-decode",
		OpSeal: "aes-gcm-seal", OpOpen: "aes-gcm-open", OpStats: "stats",
		Op(200): "op(200)",
	} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", uint8(op), op.String(), want)
		}
	}
	if StatusCodecFailed.String() != "codec-failed" || Status(999).String() != "status(999)" {
		t.Error("Status.String labels changed")
	}
}
