package server

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"testing"

	"repro/internal/ecc"
)

// eccServer starts a server with the ECC service on (default curve) and
// returns it with a connected client.
func eccServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, addr := startServer(t, cfg)
	return s, dialT(t, addr)
}

// serverPublic fetches the server's public point from the discovery
// section, the way a real client learns it.
func serverPublic(t *testing.T, c *Client) (*ECCInfo, []byte) {
	t.Helper()
	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	info := snap.Config.ECC
	if info == nil {
		t.Fatal("stats: no ecc section")
	}
	pub, err := hex.DecodeString(info.PublicKey)
	if err != nil || len(pub) != info.PointBytes {
		t.Fatalf("stats: bad public key %q: %v", info.PublicKey, err)
	}
	return info, pub
}

// TestECCRoundTrip drives all four ECC ops end to end through a live
// server: derive cross-checked against the client-side shared secret,
// sign checked by the client-side verifier and the verify op, and the
// handshake opened with the client's private key.
func TestECCRoundTrip(t *testing.T) {
	s, c := eccServer(t, Config{Workers: 2})
	info, pub := serverPublic(t, c)
	if info.Curve != "NIST K-233" {
		t.Fatalf("default curve %q, want NIST K-233", info.Curve)
	}

	curve, err := ecc.CurveByName(info.Curve)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := ecc.GenerateKey(curve, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cliPub := curve.MarshalUncompressed(cli.Pub)

	// ecdh-derive: the server's d * cliPub must equal the client's
	// d_cli * serverPub.
	shared, err := c.ECDHDerive(cliPub)
	if err != nil {
		t.Fatal(err)
	}
	srvPt, err := curve.UnmarshalUncompressed(pub)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cli.SharedSecret(srvPt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shared, want) {
		t.Fatalf("derive mismatch:\n got %x\nwant %x", shared, want)
	}

	// ecdsa-sign: deterministic, verifies against the advertised public
	// point both locally and via the verify op.
	digest := sha256.Sum256([]byte("gfp ecc round trip"))
	sig, err := c.ECDSASign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != info.SignatureBytes {
		t.Fatalf("signature %dB, want %d", len(sig), info.SignatureBytes)
	}
	again, err := c.ECDSASign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sig, again) {
		t.Fatal("ecdsa-sign is not deterministic")
	}
	eng, err := ecc.NewEngine(curve, cli.D)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.VerifyWire(pub, sig, digest[:]); err != nil {
		t.Fatalf("local verify of server signature: %v", err)
	}
	if err := c.ECDSAVerify(pub, sig, digest[:]); err != nil {
		t.Fatalf("verify op: %v", err)
	}
	// Tampered signature must come back codec-failed, not OK.
	bad := append([]byte(nil), sig...)
	bad[3] ^= 1
	err = c.ECDSAVerify(pub, bad, digest[:])
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusCodecFailed {
		t.Fatalf("tampered verify: got %v, want codec-failed", err)
	}

	// secure-session: open the handshake with the client's key and
	// recover the challenge.
	challenge := []byte("nonce-challenge-0123456789")
	resp, err := c.SecureSession(cliPub, challenge)
	if err != nil {
		t.Fatal(err)
	}
	key, got, err := ecc.OpenSessionResponse(cli, cliPub, resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, challenge) {
		t.Fatalf("session challenge mismatch: %q", got)
	}
	if len(key) != 16 {
		t.Fatalf("session key %dB, want 16", len(key))
	}

	// The op counters saw everything (2 signs, 1 verify OK, 1 failure).
	if n := s.ecc.signs.Load(); n != 2 {
		t.Fatalf("signs counter = %d, want 2", n)
	}
	if n := s.ecc.failures.Load(); n != 1 {
		t.Fatalf("failures counter = %d, want 1", n)
	}
}

// TestECCFleetDeterminism: two servers sharing Key (and curve) derive
// the same scalar, hence identical public points and signatures — the
// property ecdsa-sign's idempotency classification rests on.
func TestECCFleetDeterminism(t *testing.T) {
	key := []byte("fleet-shared-key")
	_, c1 := eccServer(t, Config{Key: append([]byte(nil), key...)})
	_, c2 := eccServer(t, Config{Key: append([]byte(nil), key...)})
	_, pub1 := serverPublic(t, c1)
	_, pub2 := serverPublic(t, c2)
	if !bytes.Equal(pub1, pub2) {
		t.Fatal("same key, different public points")
	}
	digest := sha256.Sum256([]byte("fleet"))
	s1, err := c1.ECDSASign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c2.ECDSASign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("same key, different signatures")
	}

	// A separate ECCKey decouples the signing identity from the GCM key.
	_, c3 := eccServer(t, Config{Key: append([]byte(nil), key...), ECCKey: []byte("rotated")})
	_, pub3 := serverPublic(t, c3)
	if bytes.Equal(pub1, pub3) {
		t.Fatal("distinct ECCKey produced the same public point")
	}
}

// TestECCValidation: every malformed request is rejected at the framing
// gate with bad-request, before touching a worker.
func TestECCValidation(t *testing.T) {
	_, c := eccServer(t, Config{})
	info, pub := serverPublic(t, c)

	wantStatus := func(err error, want Status, what string) {
		t.Helper()
		var se *StatusError
		if !errors.As(err, &se) || se.Status != want {
			t.Fatalf("%s: got %v, want %v", what, err, want)
		}
	}

	_, err := c.ECDHDerive(pub[:10])
	wantStatus(err, StatusBadRequest, "short derive point")
	_, err = c.ECDSASign(nil)
	wantStatus(err, StatusBadRequest, "empty digest")
	_, err = c.ECDSASign(make([]byte, ecc.MaxDigestBytes+1))
	wantStatus(err, StatusBadRequest, "oversized digest")
	err = c.ECDSAVerify(pub, make([]byte, info.SignatureBytes), nil)
	wantStatus(err, StatusBadRequest, "verify without digest")
	_, err = c.SecureSession(pub, make([]byte, MaxSessionChallenge+1))
	wantStatus(err, StatusBadRequest, "oversized challenge")

	// Off-curve point: passes the length gate, fails semantically.
	offCurve := append([]byte(nil), pub...)
	offCurve[len(offCurve)-1] ^= 1
	_, err = c.ECDHDerive(offCurve)
	wantStatus(err, StatusCodecFailed, "off-curve derive")
}

// TestECCDisabled: curve=off servers reject the ECC ops as unsupported
// and advertise no discovery section.
func TestECCDisabled(t *testing.T) {
	_, c := eccServer(t, Config{Curve: CurveOff})
	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Config.ECC != nil {
		t.Fatal("curve=off still advertises an ecc section")
	}
	_, err = c.ECDSASign([]byte{1})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != StatusUnsupported {
		t.Fatalf("sign with ecc off: got %v, want unsupported", err)
	}
}

// TestECCIdempotencyTaxonomy pins the retry classification: the pure
// and deterministic ops are idempotent, the handshake never is.
func TestECCIdempotencyTaxonomy(t *testing.T) {
	want := map[Op]bool{
		OpRSEncode: true, OpRSDecode: true, OpStats: true,
		OpSeal: false, OpOpen: false,
		OpECDHDerive: true, OpECDSASign: true, OpECDSAVerify: true,
		OpSecureSession: false,
	}
	for op, idem := range want {
		if got := op.Idempotent(); got != idem {
			t.Errorf("%v.Idempotent() = %v, want %v", op, got, idem)
		}
	}
}

// TestECCSelfTestCoversGfbig: the startup self-test reports the big
// binary field alongside the byte fields, and health gates on it.
func TestECCSelfTestCoversGfbig(t *testing.T) {
	s, _ := eccServer(t, Config{})
	res := s.SelfTest()
	if !res.OK {
		t.Fatalf("selftest failed: %s", res.Error)
	}
	found := false
	for _, f := range res.Fields {
		if f == "GF(2^233) (gfbig)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("selftest fields %v lack the gfbig entry", res.Fields)
	}
	if err := s.Healthy(); err != nil {
		t.Fatalf("Healthy: %v", err)
	}
}

// TestECCBadCurve: an unknown curve name fails construction.
func TestECCBadCurve(t *testing.T) {
	if _, err := New(Config{Curve: "P-256"}); err == nil {
		t.Fatal("New accepted curve P-256")
	}
}
