package server

// The binary-field ECC service: ecdh-derive, ecdsa-sign, ecdsa-verify
// and the secure-session handshake, riding the same shared pipeline as
// the RS and AES-GCM ops (op in Frame.Epoch, one window slot per
// request, same exact ledger). Each worker clones the ecc.Engine, so
// the steady-state derive/sign paths run allocation-free on top of the
// gfbig scratch layer.
//
// The service's private scalar is derived deterministically from the
// configured key material, so every backend in a fleet started with the
// same key holds the same scalar. Combined with deterministic RFC 6979
// signing this is what makes ecdsa-sign idempotent for gfproxy: a retry
// on a different backend returns the bit-identical signature.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/big"
	"sync/atomic"

	"repro/internal/ecc"
	"repro/internal/perf"
)

// DefaultCurve is the curve served when Config.Curve is empty — K-233,
// the curve the paper's processor hand-codes.
const DefaultCurve = "K-233"

// CurveOff is the Config.Curve value that disables the ECC ops.
const CurveOff = "off"

// MaxSessionChallenge bounds the client challenge in a secure-session
// request; the sealed response echoes it, so the bound also caps the
// handshake response size.
const MaxSessionChallenge = 256

// eccService is the server's ECC state: the engine prototype every
// pipeline worker clones, plus the op counters and latency histograms
// surfaced through /statsz and /metrics.
type eccService struct {
	eng          *ecc.Engine
	curveName    string
	maxChallenge int

	derives  atomic.Int64
	signs    atomic.Int64
	verifies atomic.Int64
	sessions atomic.Int64
	failures atomic.Int64

	deriveLat perf.Hist
	signLat   perf.Hist
}

// scalarDomain separates the deterministic scalar derivation from every
// other use of the configured key material.
const scalarDomain = "GFP1 ecc scalar v1"

// detReader streams SHA-256(domain || curve || seed || counter) blocks:
// a deterministic byte source for RandomScalar, so a fleet configured
// with the same key material converges on the same private scalar.
type detReader struct {
	prefix []byte
	ctr    uint64
	buf    []byte
}

func (r *detReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(r.buf) == 0 {
			h := sha256.New()
			h.Write(r.prefix)
			var c [8]byte
			binary.BigEndian.PutUint64(c[:], r.ctr)
			h.Write(c[:])
			r.buf = h.Sum(nil)
			r.ctr++
		}
		c := copy(p[n:], r.buf)
		r.buf = r.buf[c:]
		n += c
	}
	return n, nil
}

// deriveECCScalar deterministically maps key material to a private
// scalar in [1, order-1] for the given curve.
func deriveECCScalar(c *ecc.Curve, seed []byte) (*big.Int, error) {
	prefix := make([]byte, 0, len(scalarDomain)+len(c.Name)+len(seed))
	prefix = append(prefix, scalarDomain...)
	prefix = append(prefix, c.Name...)
	prefix = append(prefix, seed...)
	return c.RandomScalar(&detReader{prefix: prefix})
}

// newECCService builds the service for cfg, or returns (nil, nil) when
// the ECC ops are disabled.
func newECCService(cfg Config) (*eccService, error) {
	name := cfg.Curve
	if name == CurveOff {
		return nil, nil
	}
	if name == "" {
		name = DefaultCurve
	}
	curve, err := ecc.CurveByName(name)
	if err != nil {
		return nil, err
	}
	seed := cfg.ECCKey
	if len(seed) == 0 {
		seed = cfg.Key
	}
	d, err := deriveECCScalar(curve, seed)
	if err != nil {
		return nil, fmt.Errorf("server: ecc scalar derivation: %w", err)
	}
	eng, err := ecc.NewEngine(curve, d)
	if err != nil {
		return nil, fmt.Errorf("server: ecc engine: %w", err)
	}
	return &eccService{eng: eng, curveName: curve.Name, maxChallenge: MaxSessionChallenge}, nil
}

// ECCInfo is the discovery section of ConfigInfo: everything a client
// needs to size requests for the ECC ops without guessing.
type ECCInfo struct {
	Curve          string `json:"curve"`
	FieldBytes     int    `json:"field_bytes"`
	OrderBytes     int    `json:"order_bytes"`
	PointBytes     int    `json:"point_bytes"`     // 1 + 2*FieldBytes (SEC 1 uncompressed)
	SignatureBytes int    `json:"signature_bytes"` // 2*OrderBytes (r || s)
	MaxDigest      int    `json:"max_digest"`
	MaxChallenge   int    `json:"max_challenge"`
	PublicKey      string `json:"public_key"` // hex SEC 1 uncompressed point
	MulStrategy    string `json:"mul_strategy"`
}

// info snapshots the discovery section.
func (svc *eccService) info() *ECCInfo {
	e := svc.eng
	return &ECCInfo{
		Curve:          svc.curveName,
		FieldBytes:     e.FieldBytes(),
		OrderBytes:     e.OrderBytes(),
		PointBytes:     e.PointBytes(),
		SignatureBytes: e.SignatureBytes(),
		MaxDigest:      ecc.MaxDigestBytes,
		MaxChallenge:   svc.maxChallenge,
		PublicKey:      hex.EncodeToString(e.PublicBytes()),
		MulStrategy:    e.Curve().F.MulStrategy().String(),
	}
}

// validateECC length-checks one ECC request against the engine's wire
// widths, returning a rejection message ("" accepts). Semantic checks
// (on-curve, verification) stay in the pipeline stage; handle() only
// guards framing so a malformed request never occupies a worker.
func (svc *eccService) validateECC(op Op, payloadLen int) string {
	pb, ob := svc.eng.PointBytes(), svc.eng.OrderBytes()
	switch op {
	case OpECDHDerive:
		if payloadLen != pb {
			return fmt.Sprintf("ecdh-derive payload %dB, want %dB uncompressed point", payloadLen, pb)
		}
	case OpECDSASign:
		if payloadLen == 0 || payloadLen > ecc.MaxDigestBytes {
			return fmt.Sprintf("ecdsa-sign payload %dB, want 1..%dB digest", payloadLen, ecc.MaxDigestBytes)
		}
	case OpECDSAVerify:
		base := pb + 2*ob
		if payloadLen <= base || payloadLen > base+ecc.MaxDigestBytes {
			return fmt.Sprintf("ecdsa-verify payload %dB, want point(%d)+sig(%d)+digest(1..%d)",
				payloadLen, pb, 2*ob, ecc.MaxDigestBytes)
		}
	case OpSecureSession:
		if payloadLen < pb || payloadLen > pb+svc.maxChallenge {
			return fmt.Sprintf("secure-session payload %dB, want point(%d)+challenge(0..%d)",
				payloadLen, pb, svc.maxChallenge)
		}
	}
	return ""
}
