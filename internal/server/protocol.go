// Package server exposes the repository's codec pipeline as a network
// service: a concurrent TCP server speaking a length-prefixed binary
// protocol whose requests (RS encode/decode, AES-GCM seal/open, stats,
// binary-field ECDH/ECDSA and the secure-session handshake)
// are multiplexed from many connections into one shared
// pipeline.Pipeline and routed back by request id — the system-level
// serving layer over the paper's GF protection engine.
//
// # Wire format
//
// Every message — request or response — is a 24-byte header followed by
// a params section and a payload section, all integers big-endian:
//
//	offset  size  field
//	0       4     magic 0x47465031 ("GFP1")
//	4       1     version (1)
//	5       1     op
//	6       2     status/flags (see below)
//	8       8     request id (echoed verbatim in the response)
//	16      4     params length P (≤ 256)
//	20      4     payload length L (≤ the server's max payload)
//	24      P     params (op-specific, e.g. the 12-byte GCM nonce)
//	24+P    L     payload
//
// The 16-bit field at offset 6 carries the response status code in its
// low 15 bits (0 in requests) and request flags in the high bit:
// FlagTraced marks a request whose params section ends with a
// trace-context extension (see repro/internal/obs/trace). Pre-trace
// clients always sent 0 here and pre-trace servers never read it on
// requests, so the split is wire-compatible in both directions.
//
// Request ids are chosen by the client and only need to be unique among
// that connection's in-flight requests; responses may arrive in any
// order. Error responses carry a non-zero status and a human-readable
// message as their payload.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/obs/trace"
)

// Protocol constants.
const (
	Magic      = 0x47465031 // "GFP1"
	Version    = 1
	headerSize = 24

	// HeaderSize is the fixed frame-header length, exported for wire
	// accounting by clients and proxies.
	HeaderSize = headerSize

	// MaxParams bounds the params section of any message.
	MaxParams = 256

	// DefaultMaxPayload is the payload-size guard applied when
	// Config.MaxPayload is zero.
	DefaultMaxPayload = 1 << 20

	// NonceSize is the GCM nonce carried in seal/open params.
	NonceSize = 12
)

// Request flag bits, carried in the high bits of the header's
// status/flags field (always 0 in responses and in pre-trace requests).
const (
	// FlagTraced marks a request whose params end with a trace-context
	// extension; the receiver strips it before op-param validation.
	FlagTraced uint16 = 0x8000

	// flagsMask covers every defined flag bit; the rest of the field is
	// the response status.
	flagsMask uint16 = 0x8000
)

// Op identifies the requested codec operation.
type Op uint8

// The protocol ops.
const (
	OpRSEncode Op = 1 // payload: K·depth message bytes -> N·depth codeword bytes
	OpRSDecode Op = 2 // payload: N·depth received bytes -> K·depth corrected message
	OpSeal     Op = 3 // params: 12-byte nonce; payload: plaintext -> ciphertext||tag
	OpOpen     Op = 4 // params: 12-byte nonce; payload: ciphertext||tag -> plaintext
	OpStats    Op = 5 // payload: none -> JSON StatsSnapshot

	// Binary-field ECC ops (see docs/SERVER.md for the exact layouts;
	// fb/ob below are the configured curve's field/order byte widths).
	OpECDHDerive    Op = 6 // payload: peer point 04||x||y (1+2fb) -> shared x (fb)
	OpECDSASign     Op = 7 // payload: digest (1..64B) -> signature r||s (2ob)
	OpECDSAVerify   Op = 8 // payload: point||r||s||digest -> empty (status is the verdict)
	OpSecureSession Op = 9 // payload: client point||challenge -> eph point||nonce||sealed
)

// Idempotent reports whether the op may be transparently retried by a
// proxy after a backend is lost mid-flight. RS encode/decode and stats
// are pure functions of their request bytes — replaying one on another
// backend produces the same answer and mutates nothing. The AES-GCM ops
// are deliberately excluded: the client chose the nonce, and a replayed
// seal would emit a second ciphertext under the same (key, nonce) pair —
// exactly the reuse GCM's security argument forbids — with no way for
// the proxy to prove the first attempt never reached the cipher.
//
// The ECC ops split along the same line. ecdh-derive and ecdsa-verify
// are pure functions of the request. ecdsa-sign is retry-safe only
// because signing is deterministic (RFC 6979 nonces): every backend
// holding the fleet key produces the bit-identical signature for a
// given digest, so a replay cannot leak a second nonce for the same
// message the way a randomized ECDSA signer would. secure-session is
// excluded for the GCM reason in new clothes: each handshake draws a
// fresh ephemeral key, so a replayed request would mint a second
// session the client never learns about. (A backend that *rejects* a
// request without processing it, e.g. with StatusShuttingDown, is safe
// to retry regardless of op; see Status.RetrySafe.)
func (o Op) Idempotent() bool {
	switch o {
	case OpRSEncode, OpRSDecode, OpStats, OpECDHDerive, OpECDSASign, OpECDSAVerify:
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRSEncode:
		return "rs-encode"
	case OpRSDecode:
		return "rs-decode"
	case OpSeal:
		return "aes-gcm-seal"
	case OpOpen:
		return "aes-gcm-open"
	case OpStats:
		return "stats"
	case OpECDHDerive:
		return "ecdh-derive"
	case OpECDSASign:
		return "ecdsa-sign"
	case OpECDSAVerify:
		return "ecdsa-verify"
	case OpSecureSession:
		return "secure-session"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Status is the response status code.
type Status uint16

// The response status codes.
const (
	StatusOK           Status = 0 // success; payload is the result
	StatusBadRequest   Status = 1 // malformed params or payload for the op
	StatusUnsupported  Status = 2 // unknown op or protocol version
	StatusTooLarge     Status = 3 // declared frame size beyond the guard
	StatusCodecFailed  Status = 4 // codec error (uncorrectable word, auth failure)
	StatusShuttingDown Status = 5 // server draining; request was not processed
	StatusInternal     Status = 6 // server-side invariant failure

	// Statuses originated by a routing front door (gfproxy), never by a
	// backend itself.
	StatusUnavailable Status = 7 // no healthy backend could serve the request
	StatusOverloaded  Status = 8 // per-tenant admission limit exceeded; retry later
)

// RetrySafe reports whether a response with this status guarantees the
// request was never processed, making a retry safe for any op — even the
// non-idempotent ones. A draining backend rejects before touching the
// pipeline, so a proxy can replay the request elsewhere without risking
// nonce reuse.
func (s Status) RetrySafe() bool { return s == StatusShuttingDown }

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusUnsupported:
		return "unsupported"
	case StatusTooLarge:
		return "too-large"
	case StatusCodecFailed:
		return "codec-failed"
	case StatusShuttingDown:
		return "shutting-down"
	case StatusInternal:
		return "internal"
	case StatusUnavailable:
		return "unavailable"
	case StatusOverloaded:
		return "overloaded"
	default:
		return fmt.Sprintf("status(%d)", uint16(s))
	}
}

// Message is one decoded protocol frame.
type Message struct {
	Op     Op
	Status Status
	// Flags carries the request flag bits (FlagTraced); it shares the
	// status/flags header field with Status and is 0 in responses.
	Flags   uint16
	ID      uint64
	Params  []byte
	Payload []byte
}

// ProtoError is a framing violation that poisons the byte stream: after
// one, the connection cannot be resynchronized and must be closed. It
// wraps the status the server (or proxy) reports, best effort, before
// closing.
type ProtoError struct {
	Status Status
	msg    string
}

func (e *ProtoError) Error() string { return e.msg }

func protoErrorf(st Status, format string, args ...any) error {
	return &ProtoError{Status: st, msg: fmt.Sprintf(format, args...)}
}

// writeMessage serializes m to w. Callers serialize access to w.
func writeMessage(w io.Writer, m *Message) error {
	if len(m.Params) > MaxParams {
		return fmt.Errorf("server: params %dB exceeds %dB", len(m.Params), MaxParams)
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = Version
	hdr[5] = byte(m.Op)
	binary.BigEndian.PutUint16(hdr[6:], uint16(m.Status)|(m.Flags&flagsMask))
	binary.BigEndian.PutUint64(hdr[8:], m.ID)
	binary.BigEndian.PutUint32(hdr[16:], uint32(len(m.Params)))
	binary.BigEndian.PutUint32(hdr[20:], uint32(len(m.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(m.Params); err != nil {
		return err
	}
	_, err := w.Write(m.Payload)
	return err
}

// readMessage reads one message from r, enforcing the magic/version and
// the params/payload size guards. Size and framing violations come back
// as *ProtoError; the caller should report the status and drop the
// connection, since the stream position is lost. A clean EOF before the
// first header byte is io.EOF; EOF mid-message is ErrUnexpectedEOF.
func readMessage(r io.Reader, maxPayload int) (*Message, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if got := binary.BigEndian.Uint32(hdr[0:]); got != Magic {
		return nil, protoErrorf(StatusBadRequest, "bad magic %#08x", got)
	}
	if hdr[4] != Version {
		return nil, protoErrorf(StatusUnsupported, "protocol version %d, want %d", hdr[4], Version)
	}
	sf := binary.BigEndian.Uint16(hdr[6:])
	m := &Message{
		Op:     Op(hdr[5]),
		Status: Status(sf &^ flagsMask),
		Flags:  sf & flagsMask,
		ID:     binary.BigEndian.Uint64(hdr[8:]),
	}
	paramsLen := binary.BigEndian.Uint32(hdr[16:])
	payloadLen := binary.BigEndian.Uint32(hdr[20:])
	if paramsLen > MaxParams {
		return nil, protoErrorf(StatusTooLarge, "params %dB exceeds %dB", paramsLen, MaxParams)
	}
	if int64(payloadLen) > int64(maxPayload) {
		return nil, protoErrorf(StatusTooLarge, "payload %dB exceeds %dB guard", payloadLen, maxPayload)
	}
	buf := make([]byte, paramsLen+payloadLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	m.Params = buf[:paramsLen:paramsLen]
	m.Payload = buf[paramsLen:]
	return m, nil
}

// ReadRequest reads one frame from r under the given payload guard. It
// is the exported face of the frame reader for GFP1 intermediaries
// (gfproxy) that terminate the protocol without being a Server; the
// error contract matches readMessage.
func ReadRequest(r io.Reader, maxPayload int) (*Message, error) {
	return readMessage(r, maxPayload)
}

// WriteResponse serializes m to w. Callers serialize access to w.
func WriteResponse(w io.Writer, m *Message) error {
	return writeMessage(w, m)
}

// AttachTrace appends tc's params trace-context extension to m and sets
// FlagTraced. Append semantics apply: a decoded message's params slice
// is capacity-pinned to its length, so the extension lands in a fresh
// backing array and never clobbers adjacent payload bytes.
func AttachTrace(m *Message, tc trace.Context) {
	m.Params = tc.Append(m.Params)
	m.Flags |= FlagTraced
}
