package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// StatusError is the typed error for a non-OK response status; the
// response's payload (the server's message) is preserved.
type StatusError struct {
	Op     Op
	Status Status
	Msg    string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %v: %v: %s", e.Op, e.Status, e.Msg)
}

// Client is a connection to a codec server. Call (and the typed
// wrappers) are safe for concurrent use: concurrent callers pipeline
// their requests on the single connection and responses are matched
// back by request id, in whatever order the server finishes them.
type Client struct {
	nc net.Conn
	bw *bufio.Writer

	wmu sync.Mutex // serializes writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Message
	err     error         // terminal receive/connection error
	closed  chan struct{} // closed when the read loop exits
}

// Dial connects to a codec server, retrying refused connections until
// wait has elapsed (wait 0 means a single attempt) — handy while a
// freshly spawned server is still binding its listener.
func Dial(addr string, wait time.Duration) (*Client, error) {
	deadline := time.Now().Add(wait)
	for {
		nc, err := net.Dial("tcp", addr)
		if err == nil {
			return NewClient(nc), nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// NewClient wraps an established connection and starts its read loop.
func NewClient(nc net.Conn) *Client {
	c := &Client{
		nc:      nc,
		bw:      bufio.NewWriterSize(nc, 64<<10),
		pending: make(map[uint64]chan *Message),
		closed:  make(chan struct{}),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	for {
		m, err := readMessage(br, DefaultMaxPayload)
		if err != nil {
			c.fail(fmt.Errorf("server: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[m.ID]
		delete(c.pending, m.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// fail records the terminal error and wakes every waiting call.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.closed)
	}
	c.mu.Unlock()
}

// Close tears the connection down; in-flight calls fail.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.fail(fmt.Errorf("server: client closed"))
	return err
}

// Call sends one request and blocks for its response. A non-OK status
// comes back as a *StatusError (alongside the raw response).
func (c *Client) Call(op Op, params, payload []byte) (*Message, error) {
	return c.Do(&Message{Op: op, Params: params, Payload: payload})
}

// Do sends one caller-built request and blocks for its response. The
// request id is assigned by the client (any value in m.ID is
// overwritten); Flags, Params and Payload go out verbatim — the entry
// point for traced callers and GFP1 intermediaries that need more than
// Call's (op, params, payload) surface. A non-OK status comes back as a
// *StatusError (alongside the raw response).
func (c *Client) Do(m *Message) (*Message, error) {
	ch := make(chan *Message, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.mu.Unlock()

	m.ID = id
	c.wmu.Lock()
	err := writeMessage(c.bw, m)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.fail(fmt.Errorf("server: send: %w", err))
		return nil, err
	}

	select {
	case resp := <-ch:
		if resp.Status != StatusOK {
			return resp, &StatusError{Op: resp.Op, Status: resp.Status, Msg: string(resp.Payload)}
		}
		return resp, nil
	case <-c.closed:
		c.mu.Lock()
		err := c.err
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
}

// RSEncode encodes a k×depth-byte message into an n×depth-byte frame.
func (c *Client) RSEncode(msg []byte) ([]byte, error) {
	m, err := c.Call(OpRSEncode, nil, msg)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

// RSDecode corrects an n×depth-byte received frame back to its message.
func (c *Client) RSDecode(recv []byte) ([]byte, error) {
	m, err := c.Call(OpRSDecode, nil, recv)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

// Seal AES-GCM-encrypts plaintext under the client-chosen 12-byte nonce.
func (c *Client) Seal(nonce, plaintext []byte) ([]byte, error) {
	m, err := c.Call(OpSeal, nonce, plaintext)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

// Open verifies and decrypts Seal's output.
func (c *Client) Open(nonce, sealed []byte) ([]byte, error) {
	m, err := c.Call(OpOpen, nonce, sealed)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

// ECDHDerive sends an SEC 1 uncompressed public point and returns the
// ECDH shared secret (the x-coordinate of serverScalar * peer).
func (c *Client) ECDHDerive(peer []byte) ([]byte, error) {
	m, err := c.Call(OpECDHDerive, nil, peer)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

// ECDSASign signs a 1..64-byte digest under the server's fleet key and
// returns the r||s signature. Signing is deterministic (RFC 6979), so
// repeated calls — on any backend sharing the key — return identical
// bytes.
func (c *Client) ECDSASign(digest []byte) ([]byte, error) {
	m, err := c.Call(OpECDSASign, nil, digest)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

// ECDSAVerify checks an r||s signature over digest against an SEC 1
// uncompressed public point; the status carries the verdict (nil means
// the signature verifies).
func (c *Client) ECDSAVerify(pub, sig, digest []byte) error {
	payload := make([]byte, 0, len(pub)+len(sig)+len(digest))
	payload = append(payload, pub...)
	payload = append(payload, sig...)
	payload = append(payload, digest...)
	_, err := c.Call(OpECDSAVerify, nil, payload)
	return err
}

// SecureSession runs the handshake: the client's public point and an
// opaque challenge go up; the raw response (ephemeral point, GCM nonce,
// sealed challenge) comes back for ecc.OpenSessionResponse.
func (c *Client) SecureSession(clientPub, challenge []byte) ([]byte, error) {
	payload := make([]byte, 0, len(clientPub)+len(challenge))
	payload = append(payload, clientPub...)
	payload = append(payload, challenge...)
	m, err := c.Call(OpSecureSession, nil, payload)
	if err != nil {
		return nil, err
	}
	return m.Payload, nil
}

// Stats fetches the server's statistics snapshot.
func (c *Client) Stats() (*StatsSnapshot, error) {
	m, err := c.Call(OpStats, nil, nil)
	if err != nil {
		return nil, err
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(m.Payload, &snap); err != nil {
		return nil, fmt.Errorf("server: stats payload: %w", err)
	}
	return &snap, nil
}
