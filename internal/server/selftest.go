package server

// Datapath self-verification: a serving process proves its math before
// reporting healthy. Every registered GF kernel tier (packed rows,
// product tables, bitsliced SWAR, carry-less multiply) is
// differentially checked against the scalar reference for both fields
// the server actually computes in — the RS field and the AES field —
// via gf.VerifyKernels. The check runs once, lazily, the
// first time health is probed (gfproxy's health gate therefore admits a
// backend into the ring only after its datapath has verified), and can
// be re-run on demand through the /selftest admin endpoint.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/gf"
	"repro/internal/gfbig"
)

// selftestVectors is how many pseudo-random vectors per op each field is
// checked with. At GF(2^8) one run is a few hundred microseconds.
const selftestVectors = 8

// SelfTestResult reports one differential verification run.
type SelfTestResult struct {
	OK        bool     `json:"ok"`
	Fields    []string `json:"fields"`  // fields checked, e.g. "GF(2^8) poly=0x11d"
	Tiers     []string `json:"tiers"`   // verified kernel tiers per field, comma-joined
	Vectors   int      `json:"vectors"` // vectors per op per tier per field
	ElapsedNs int64    `json:"elapsed_ns"`
	Error     string   `json:"error,omitempty"` // first disagreement, when !OK
}

// selftest is the cached startup verification state.
type selftest struct {
	once sync.Once
	res  SelfTestResult
}

// SelfTest runs the differential kernel verification for the server's
// serving fields and returns the result. It is safe for concurrent use
// and deliberately un-cached: the /selftest endpoint re-checks the live
// tables on every call.
func (s *Server) SelfTest() SelfTestResult {
	return runSelfTest(s.iv.Code.F, s.eccField(), time.Now().UnixNano())
}

// startupSelfTest returns the once-per-process verification run that
// gates Healthy. The seed is fixed so a failing deployment reproduces
// byte-for-byte.
func (s *Server) startupSelfTest() SelfTestResult {
	s.st.once.Do(func() {
		s.st.res = runSelfTest(s.iv.Code.F, s.eccField(), 1)
	})
	return s.st.res
}

// eccField returns the big binary field the ECC ops compute in, nil
// when the ECC service is disabled.
func (s *Server) eccField() *gfbig.Field {
	if s.ecc == nil {
		return nil
	}
	return s.ecc.eng.Curve().F
}

func runSelfTest(rsField *gf.Field, eccField *gfbig.Field, seed int64) SelfTestResult {
	fields := []*gf.Field{rsField}
	// The AES-GCM ops compute in the AES field; check it too unless the
	// RS field already is it.
	aesF := gf.AES()
	if rsField.Poly() != aesF.Poly() || rsField.M() != aesF.M() {
		fields = append(fields, aesF)
	}
	res := SelfTestResult{OK: true, Vectors: selftestVectors}
	start := time.Now()
	for _, f := range fields {
		res.Fields = append(res.Fields, fmt.Sprintf("%v poly=%#x", f, f.Poly()))
		res.Tiers = append(res.Tiers, strings.Join(f.Kernels().AvailableTiers(), ","))
		if res.OK {
			if err := gf.VerifyKernels(f, selftestVectors, seed); err != nil {
				res.OK = false
				res.Error = err.Error()
			}
		}
	}
	// The ECC ops compute in a big binary field with its own strategy
	// registry (gfbig); verify every full-product strategy against the
	// schoolbook reference so /healthz gates on the ECC datapath too.
	if eccField != nil {
		res.Fields = append(res.Fields, eccField.String()+" (gfbig)")
		res.Tiers = append(res.Tiers, strings.Join(gfbig.StrategyNames(), ","))
		if res.OK {
			if err := eccField.VerifyMulStrategies(selftestVectors, seed); err != nil {
				res.OK = false
				res.Error = err.Error()
			}
		}
	}
	res.ElapsedNs = time.Since(start).Nanoseconds()
	return res
}
