package server

import (
	"sync/atomic"

	"repro/internal/perf"
)

// counters are the server-level atomics exported by the stats op.
type counters struct {
	connsAccepted atomic.Int64
	connsActive   atomic.Int64
	requests      atomic.Int64
	responses     atomic.Int64
	rejects       atomic.Int64
	dropped       atomic.Int64
	protoErrors   atomic.Int64
	bytesIn       atomic.Int64
	bytesOut      atomic.Int64
}

// snapshot reads the counters in an order that keeps the request ledger
// consistent under concurrency: the terminal counters (responses,
// rejects, dropped) first, requests last. Every request is counted
// before its terminal outcome, so any snapshot satisfies
// Requests >= Responses + Rejects + Dropped, with equality once the
// server has quiesced.
func (c *counters) snapshot() Counters {
	out := Counters{
		Responses:   c.responses.Load(),
		Rejects:     c.rejects.Load(),
		Dropped:     c.dropped.Load(),
		ProtoErrors: c.protoErrors.Load(),
	}
	out.ConnsAccepted = c.connsAccepted.Load()
	out.ConnsActive = c.connsActive.Load()
	out.BytesIn = c.bytesIn.Load()
	out.BytesOut = c.bytesOut.Load()
	out.Requests = c.requests.Load()
	return out
}

// Counters is the serialized form of the server-level counters. The
// request ledger is exact and disjoint: every framed request terminates
// as exactly one of Responses (an OK reply reached the wire), Rejects
// (an error-status reply reached the wire) or Dropped (the connection
// died before any reply was written), so
//
//	Requests == Responses + Rejects + Dropped
//
// once the server quiesces, and Requests is never below the sum in a
// live snapshot. ProtoErrors counts framing violations, which poison
// the connection before a request is ever counted and therefore sit
// outside the ledger.
type Counters struct {
	ConnsAccepted int64 `json:"conns_accepted"`
	ConnsActive   int64 `json:"conns_active"`
	Requests      int64 `json:"requests"`
	Responses     int64 `json:"responses"`
	Rejects       int64 `json:"rejects"`
	Dropped       int64 `json:"dropped"`
	ProtoErrors   int64 `json:"proto_errors"`
	BytesIn       int64 `json:"bytes_in"`
	BytesOut      int64 `json:"bytes_out"`
}

// ConfigInfo describes the server's codec configuration, so clients
// (gfload) can discover frame sizes instead of guessing them.
type ConfigInfo struct {
	N     int `json:"n"`
	K     int `json:"k"`
	Depth int `json:"depth"`
	// FrameK/FrameN are the RS request payload units; with Batch > 1 a
	// request may carry any positive multiple of the unit up to Batch.
	FrameK     int `json:"frame_k"`
	FrameN     int `json:"frame_n"`
	Batch      int `json:"batch"`
	Workers    int `json:"workers"`
	Queue      int `json:"queue"`
	Window     int `json:"window"`
	MaxPayload int `json:"max_payload"`
	// ECC describes the binary-field ECC service (nil when disabled), so
	// clients can size derive/sign/verify/session requests by discovery.
	ECC *ECCInfo `json:"ecc,omitempty"`
}

// StageSnapshot is one pipeline stage's statistics at snapshot time.
type StageSnapshot struct {
	Name      string           `json:"name"`
	Frames    int64            `json:"frames"`
	Errors    int64            `json:"errors"`
	BytesIn   int64            `json:"bytes_in"`
	BytesOut  int64            `json:"bytes_out"`
	Corrected int64            `json:"corrected"`
	Latency   perf.HistSummary `json:"latency"`
}

// StatsSnapshot is the stats op's response payload (JSON). ListenAddr
// is the actually-bound GFP1 listener address (meaningful when the
// server was started with ":0"), empty before Serve.
type StatsSnapshot struct {
	ListenAddr string           `json:"listen_addr,omitempty"`
	Config     ConfigInfo       `json:"config"`
	Server     Counters         `json:"server"`
	Stages     []StageSnapshot  `json:"stages"`
	Total      perf.HistSummary `json:"total"` // pipeline submit-to-delivery latency
}

// Snapshot captures the live server and pipeline statistics.
func (s *Server) Snapshot() *StatsSnapshot {
	pcfg := s.pl.Config()
	snap := &StatsSnapshot{
		Config: ConfigInfo{
			N: s.cfg.N, K: s.cfg.K, Depth: s.cfg.Depth,
			FrameK: s.iv.FrameK(), FrameN: s.iv.FrameN(), Batch: s.cfg.Batch,
			Workers: pcfg.Workers, Queue: pcfg.Queue,
			Window: s.cfg.Window, MaxPayload: s.cfg.MaxPayload,
		},
		Server: s.ctr.snapshot(),
		Total:  s.pl.Total.Summary(),
	}
	if s.ecc != nil {
		snap.Config.ECC = s.ecc.info()
	}
	if a := s.Addr(); a != nil {
		snap.ListenAddr = a.String()
	}
	for _, st := range s.pl.Stats() {
		snap.Stages = append(snap.Stages, StageSnapshot{
			Name:      st.Name,
			Frames:    st.Frames.Load(),
			Errors:    st.Errors.Load(),
			BytesIn:   st.BytesIn.Load(),
			BytesOut:  st.BytesOut.Load(),
			Corrected: st.Corrected.Load(),
			Latency:   st.Latency.Summary(),
		})
	}
	return snap
}
