package server

import (
	"sync/atomic"

	"repro/internal/perf"
)

// counters are the server-level atomics exported by the stats op.
type counters struct {
	connsAccepted atomic.Int64
	connsActive   atomic.Int64
	requests      atomic.Int64
	responses     atomic.Int64
	rejects       atomic.Int64
	dropped       atomic.Int64
	bytesIn       atomic.Int64
	bytesOut      atomic.Int64
}

// Counters is the serialized form of the server-level counters.
type Counters struct {
	ConnsAccepted int64 `json:"conns_accepted"`
	ConnsActive   int64 `json:"conns_active"`
	Requests      int64 `json:"requests"`
	Responses     int64 `json:"responses"`
	// Rejects counts error responses (malformed requests and codec
	// failures); Dropped counts responses abandoned because their
	// connection died first.
	Rejects  int64 `json:"rejects"`
	Dropped  int64 `json:"dropped"`
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
}

// ConfigInfo describes the server's codec configuration, so clients
// (gfload) can discover frame sizes instead of guessing them.
type ConfigInfo struct {
	N          int `json:"n"`
	K          int `json:"k"`
	Depth      int `json:"depth"`
	FrameK     int `json:"frame_k"` // rs-encode request payload size
	FrameN     int `json:"frame_n"` // rs-decode request payload size
	Workers    int `json:"workers"`
	Queue      int `json:"queue"`
	Window     int `json:"window"`
	MaxPayload int `json:"max_payload"`
}

// StageSnapshot is one pipeline stage's statistics at snapshot time.
type StageSnapshot struct {
	Name      string           `json:"name"`
	Frames    int64            `json:"frames"`
	Errors    int64            `json:"errors"`
	BytesIn   int64            `json:"bytes_in"`
	BytesOut  int64            `json:"bytes_out"`
	Corrected int64            `json:"corrected"`
	Latency   perf.HistSummary `json:"latency"`
}

// StatsSnapshot is the stats op's response payload (JSON).
type StatsSnapshot struct {
	Config ConfigInfo       `json:"config"`
	Server Counters         `json:"server"`
	Stages []StageSnapshot  `json:"stages"`
	Total  perf.HistSummary `json:"total"` // pipeline submit-to-delivery latency
}

// Snapshot captures the live server and pipeline statistics.
func (s *Server) Snapshot() *StatsSnapshot {
	pcfg := s.pl.Config()
	snap := &StatsSnapshot{
		Config: ConfigInfo{
			N: s.cfg.N, K: s.cfg.K, Depth: s.cfg.Depth,
			FrameK: s.iv.FrameK(), FrameN: s.iv.FrameN(),
			Workers: pcfg.Workers, Queue: pcfg.Queue,
			Window: s.cfg.Window, MaxPayload: s.cfg.MaxPayload,
		},
		Server: Counters{
			ConnsAccepted: s.ctr.connsAccepted.Load(),
			ConnsActive:   s.ctr.connsActive.Load(),
			Requests:      s.ctr.requests.Load(),
			Responses:     s.ctr.responses.Load(),
			Rejects:       s.ctr.rejects.Load(),
			Dropped:       s.ctr.dropped.Load(),
			BytesIn:       s.ctr.bytesIn.Load(),
			BytesOut:      s.ctr.bytesOut.Load(),
		},
		Total: s.pl.Total.Summary(),
	}
	for _, st := range s.pl.Stats() {
		snap.Stages = append(snap.Stages, StageSnapshot{
			Name:      st.Name,
			Frames:    st.Frames.Load(),
			Errors:    st.Errors.Load(),
			BytesIn:   st.BytesIn.Load(),
			BytesOut:  st.BytesOut.Load(),
			Corrected: st.Corrected.Load(),
			Latency:   st.Latency.Summary(),
		})
	}
	return snap
}
