package bch

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

func TestDecodeErasuresOnly(t *testing.T) {
	// BCH(31,11,5): up to 2t = 10 pure erasures are correctable.
	c := Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(1))
	for _, rho := range []int{1, 4, 7, 10} {
		msg := make([]byte, c.K)
		for i := range msg {
			msg[i] = byte(rng.Intn(2))
		}
		cw, _ := c.Encode(msg)
		recv := append([]byte(nil), cw...)
		idx := rng.Perm(c.N)[:rho]
		for _, i := range idx {
			recv[i] = byte(rng.Intn(2)) // garbage
		}
		res, err := c.DecodeErasures(recv, idx)
		if err != nil {
			t.Fatalf("rho=%d: %v", rho, err)
		}
		for i := range msg {
			if res.Message[i] != msg[i] {
				t.Fatalf("rho=%d: message corrupted", rho)
			}
		}
	}
}

func TestDecodeErrorsAndErasures(t *testing.T) {
	// Frontier 2*nu + rho <= 2t = 10.
	c := Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(2))
	for rho := 0; rho <= 10; rho += 2 {
		nu := (10 - rho) / 2
		for trial := 0; trial < 10; trial++ {
			msg := make([]byte, c.K)
			for i := range msg {
				msg[i] = byte(rng.Intn(2))
			}
			cw, _ := c.Encode(msg)
			perm := rng.Perm(c.N)
			eras := perm[:rho]
			recv := append([]byte(nil), cw...)
			for _, i := range eras {
				recv[i] ^= byte(rng.Intn(2)) // half wrong on average
			}
			for _, i := range perm[rho : rho+nu] {
				recv[i] ^= 1 // definite errors outside erasures
			}
			res, err := c.DecodeErasures(recv, eras)
			if err != nil {
				t.Fatalf("rho=%d nu=%d trial=%d: %v", rho, nu, trial, err)
			}
			for i := range msg {
				if res.Message[i] != msg[i] {
					t.Fatalf("rho=%d nu=%d: message corrupted", rho, nu)
				}
			}
		}
	}
}

func TestDecodeErasuresValidation(t *testing.T) {
	c := Must(gf.MustDefault(5), 5)
	cw, _ := c.Encode(make([]byte, c.K))
	if _, err := c.DecodeErasures(cw, make([]int, 11)); err == nil {
		t.Error("11 erasures accepted for t=5")
	}
	if _, err := c.DecodeErasures(cw, []int{99}); err == nil {
		t.Error("out-of-range erasure accepted")
	}
	if _, err := c.DecodeErasures(cw[:5], nil); err == nil {
		t.Error("short word accepted")
	}
	// Zero erasures falls back to plain decoding.
	res, err := c.DecodeErasures(cw, nil)
	if err != nil || res.NumErrors != 0 {
		t.Error("no-erasure fallback broken")
	}
}

func TestDecodeErasuresBeyondBudgetFails(t *testing.T) {
	c := Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(3))
	fails := 0
	for trial := 0; trial < 20; trial++ {
		msg := make([]byte, c.K)
		for i := range msg {
			msg[i] = byte(rng.Intn(2))
		}
		cw, _ := c.Encode(msg)
		perm := rng.Perm(c.N)
		eras := perm[:8]
		recv := append([]byte(nil), cw...)
		for _, i := range eras {
			recv[i] ^= 1 // all erasures wrong
		}
		for _, i := range perm[8:12] { // 4 extra errors: 2*4+8 = 16 > 10
			recv[i] ^= 1
		}
		res, err := c.DecodeErasures(recv, eras)
		if err != nil {
			fails++
			continue
		}
		same := true
		for i := range msg {
			if res.Message[i] != msg[i] {
				same = false
			}
		}
		if same {
			t.Fatal("over-budget pattern decoded to the original (impossible)")
		}
	}
	if fails == 0 {
		t.Error("no failures beyond the erasure budget (suspicious)")
	}
}
