package bch

import "fmt"

// Errors-and-erasures decoding for binary BCH. Because symbols are single
// bits, an erased position has only two possible values, so the classic
// two-trial technique applies: decode once with every erasure set to 0
// and once with every erasure set to 1, and keep the attempt that
// corrects the fewest NON-erased positions. This succeeds whenever
// 2*nu + rho < 2t + 1 (nu bit errors outside rho erased positions):
// in the better trial at most floor(rho/2) erasures are actually wrong,
// so that trial sees at most nu + floor(rho/2) <= t channel errors.

// DecodeErasures corrects errors and erasures; erasures lists bit indices
// whose received values are unreliable (their current values are
// ignored). It returns an error when neither trial yields a codeword
// close enough to be trusted under the 2*nu + rho budget.
func (c *Code) DecodeErasures(recv []byte, erasures []int) (*DecodeResult, error) {
	if len(recv) != c.N {
		return nil, fmt.Errorf("bch: received length %d, want %d", len(recv), c.N)
	}
	if len(erasures) > 2*c.T {
		return nil, fmt.Errorf("bch: %d erasures exceed 2t=%d", len(erasures), 2*c.T)
	}
	erased := make(map[int]bool, len(erasures))
	for _, idx := range erasures {
		if idx < 0 || idx >= c.N {
			return nil, fmt.Errorf("bch: erasure index %d out of range", idx)
		}
		erased[idx] = true
	}
	if len(erasures) == 0 {
		return c.Decode(recv)
	}

	var best *DecodeResult
	bestOutside := -1
	for fill := byte(0); fill <= 1; fill++ {
		trial := append([]byte(nil), recv...)
		for idx := range erased {
			trial[idx] = fill
		}
		res, err := c.Decode(trial)
		if err != nil {
			continue
		}
		// Count corrections outside the erased set — the true channel
		// errors this hypothesis implies.
		outside := 0
		for _, p := range res.Positions {
			if !erased[p] {
				outside++
			}
		}
		if best == nil || outside < bestOutside {
			best = res
			bestOutside = outside
		}
	}
	if best == nil {
		return nil, fmt.Errorf("bch: both erasure trials uncorrectable")
	}
	// Budget check: 2*nu + rho must fit the designed distance.
	if 2*bestOutside+len(erasures) > 2*c.T {
		return nil, fmt.Errorf("bch: %d errors + %d erasures exceed capability t=%d",
			bestOutside, len(erasures), c.T)
	}
	best.NumErrors = bestOutside
	return best, nil
}
