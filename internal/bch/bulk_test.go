package bch

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// TestSyndromesBulkMatchesScalar: the 4-way batched bit-syndrome kernel
// and the squaring-accelerated variant both agree with the bit-at-a-time
// reference, over the paper's BCH shapes and random received words
// (including weights past t, where syndromes are still well defined).
func TestSyndromesBulkMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, shape := range []struct{ m, t int }{{4, 2}, {5, 5}, {6, 2}, {6, 7}, {8, 10}} {
		c := Must(gf.MustDefault(shape.m), shape.t)
		for trial := 0; trial < 30; trial++ {
			recv := make([]byte, c.N)
			for i := range recv {
				recv[i] = byte(rng.Intn(2))
			}
			ref := c.syndromesScalar(recv)
			for name, got := range map[string][]gf.Elem{
				"Syndromes":     c.Syndromes(recv),
				"SyndromesFast": c.SyndromesFast(recv),
			} {
				for j := range ref {
					if got[j] != ref[j] {
						t.Fatalf("%v %s: S[%d] = %#x, want %#x", c, name, j+1, got[j], ref[j])
					}
				}
			}
		}
	}
}

func BenchmarkSyndromes63_51(b *testing.B) {
	c := Must(gf.MustDefault(6), 2)
	rng := rand.New(rand.NewSource(22))
	recv := make([]byte, c.N)
	for i := range recv {
		recv[i] = byte(rng.Intn(2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Syndromes(recv)
	}
}

func BenchmarkSyndromes63_51Scalar(b *testing.B) {
	c := Must(gf.MustDefault(6), 2)
	rng := rand.New(rand.NewSource(22))
	recv := make([]byte, c.N)
	for i := range recv {
		recv[i] = byte(rng.Intn(2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.syndromesScalar(recv)
	}
}
