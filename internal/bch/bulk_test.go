package bch

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// TestSyndromesBulkMatchesScalar: the 4-way batched bit-syndrome kernel
// and the squaring-accelerated variant both agree with the bit-at-a-time
// reference, over the paper's BCH shapes and random received words
// (including weights past t, where syndromes are still well defined).
func TestSyndromesBulkMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, shape := range []struct{ m, t int }{{4, 2}, {5, 5}, {6, 2}, {6, 7}, {8, 10}} {
		c := Must(gf.MustDefault(shape.m), shape.t)
		for trial := 0; trial < 30; trial++ {
			recv := make([]byte, c.N)
			for i := range recv {
				recv[i] = byte(rng.Intn(2))
			}
			ref := c.syndromesScalar(recv)
			for name, got := range map[string][]gf.Elem{
				"Syndromes":     c.Syndromes(recv),
				"SyndromesTo":   c.SyndromesTo(make([]gf.Elem, 2*c.T), recv),
				"SyndromesFast": c.SyndromesFast(recv),
			} {
				for j := range ref {
					if got[j] != ref[j] {
						t.Fatalf("%v %s: S[%d] = %#x, want %#x", c, name, j+1, got[j], ref[j])
					}
				}
			}
		}
	}
}

// TestSyndromesToZeroAlloc pins the scratch-reusing path: once warm,
// SyndromesTo must not allocate (Syndromes paid one make per word —
// 8 B/call on the 63,51 shape — in every decode).
func TestSyndromesToZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counting is unreliable under -race")
	}
	c := Must(gf.MustDefault(6), 2)
	rng := rand.New(rand.NewSource(23))
	recv := make([]byte, c.N)
	for i := range recv {
		recv[i] = byte(rng.Intn(2))
	}
	scratch := make([]gf.Elem, 2*c.T)
	if avg := testing.AllocsPerRun(100, func() {
		_ = c.SyndromesTo(scratch, recv)
	}); avg != 0 {
		t.Fatalf("SyndromesTo allocates %.1f times per word, want 0", avg)
	}
}

func BenchmarkSyndromes63_51(b *testing.B) {
	c := Must(gf.MustDefault(6), 2)
	rng := rand.New(rand.NewSource(22))
	recv := make([]byte, c.N)
	for i := range recv {
		recv[i] = byte(rng.Intn(2))
	}
	scratch := make([]gf.Elem, 2*c.T)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.SyndromesTo(scratch, recv)
	}
}

// BenchmarkSyndromes63_51Alloc keeps the allocating Syndromes path
// measured next to the zero-alloc number above.
func BenchmarkSyndromes63_51Alloc(b *testing.B) {
	c := Must(gf.MustDefault(6), 2)
	rng := rand.New(rand.NewSource(22))
	recv := make([]byte, c.N)
	for i := range recv {
		recv[i] = byte(rng.Intn(2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Syndromes(recv)
	}
}

func BenchmarkSyndromes63_51Scalar(b *testing.B) {
	c := Must(gf.MustDefault(6), 2)
	rng := rand.New(rand.NewSource(22))
	recv := make([]byte, c.N)
	for i := range recv {
		recv[i] = byte(rng.Intn(2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.syndromesScalar(recv)
	}
}
