package bch

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/gfpoly"
)

func polyFrom(f *gf.Field, coeffs []gf.Elem) gfpoly.Poly { return gfpoly.New(f, coeffs...) }

func randBits(rng *rand.Rand, k int) []byte {
	b := make([]byte, k)
	for i := range b {
		b[i] = byte(rng.Intn(2))
	}
	return b
}

func flip(rng *rand.Rand, cw []byte, nerr int) ([]byte, []int) {
	out := append([]byte(nil), cw...)
	pos := rng.Perm(len(cw))[:nerr]
	for _, p := range pos {
		out[p] ^= 1
	}
	return out, pos
}

func TestKnownCodeParameters(t *testing.T) {
	// Classic narrow-sense BCH (n, k, t) table entries.
	cases := []struct{ m, n, k, tt int }{
		{4, 15, 11, 1},
		{4, 15, 7, 2},
		{4, 15, 5, 3},
		{5, 31, 26, 1},
		{5, 31, 21, 2},
		{5, 31, 16, 3},
		{5, 31, 11, 5}, // the paper's code
		{6, 63, 57, 1},
		{6, 63, 51, 2}, // IEEE 802.15.6 WBAN code family
		{6, 63, 45, 3},
		{7, 127, 113, 2},
		{8, 255, 239, 2},
		{8, 255, 231, 3},
	}
	for _, c := range cases {
		code, err := NewParams(c.m, c.n, c.k, c.tt)
		if err != nil {
			t.Errorf("BCH(%d,%d,%d): %v", c.n, c.k, c.tt, err)
			continue
		}
		if code.N != c.n || code.K != c.k || code.T != c.tt {
			t.Errorf("BCH(%d,%d,%d): got (%d,%d,%d)", c.n, c.k, c.tt, code.N, code.K, code.T)
		}
	}
}

func TestNewValidation(t *testing.T) {
	f := gf.MustDefault(5)
	if _, err := New(f, 0); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := New(f, 16); err == nil {
		t.Error("2t >= n accepted")
	}
	if _, err := NewParams(5, 30, 11, 5); err == nil {
		t.Error("wrong n accepted")
	}
	if _, err := NewParams(5, 31, 12, 5); err == nil {
		t.Error("wrong k accepted")
	}
	// Non-primitive polynomial must be rejected (alpha = x assumption).
	aes, _ := gf.New(8, 0x11B)
	if _, err := New(aes, 2); err == nil {
		t.Error("non-primitive field accepted")
	}
}

func TestGeneratorDividesXn1(t *testing.T) {
	// g(x) must divide x^n - 1.
	for _, m := range []int{4, 5, 6} {
		f := gf.MustDefault(m)
		c := Must(f, 2)
		n := f.N()
		coeffs := make([]gf.Elem, n+1)
		coeffs[0] = 1
		coeffs[n] = 1
		xn1 := polyFrom(f, coeffs)
		if !xn1.Mod(c.Generator()).IsZero() {
			t.Errorf("m=%d: generator does not divide x^%d-1", m, n)
		}
	}
}

func TestPaperCodeGenerator(t *testing.T) {
	// BCH(31,11,5): generator degree must be 20, binary coefficients,
	// and vanish at alpha^1..alpha^10.
	c := Must(gf.MustDefault(5), 5)
	g := c.Generator()
	if g.Degree() != 20 {
		t.Fatalf("generator degree %d, want 20", g.Degree())
	}
	for _, coeff := range g.Coeffs {
		if coeff > 1 {
			t.Fatal("non-binary generator coefficient")
		}
	}
	for i := 1; i <= 10; i++ {
		if g.Eval(c.F.AlphaPow(i)) != 0 {
			t.Errorf("g(alpha^%d) != 0", i)
		}
	}
}

func TestEncodeSystematicAndValid(t *testing.T) {
	c := Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		msg := randBits(rng, c.K)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range msg {
			if cw[i] != msg[i] {
				t.Fatal("not systematic")
			}
		}
		for _, s := range c.Syndromes(cw) {
			if s != 0 {
				t.Fatal("clean codeword has nonzero syndrome")
			}
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	c := Must(gf.MustDefault(5), 5)
	if _, err := c.Encode(make([]byte, 5)); err == nil {
		t.Error("short message accepted")
	}
	bad := make([]byte, c.K)
	bad[3] = 2
	if _, err := c.Encode(bad); err == nil {
		t.Error("non-bit value accepted")
	}
}

func TestDecodeUpToT(t *testing.T) {
	codes := []*Code{
		Must(gf.MustDefault(5), 5), // BCH(31,11,5), the paper's code
		Must(gf.MustDefault(5), 1), // BCH(31,26,1)
		Must(gf.MustDefault(6), 2), // BCH(63,51,2)
		Must(gf.MustDefault(4), 3), // BCH(15,5,3)
	}
	rng := rand.New(rand.NewSource(2))
	for _, c := range codes {
		for nerr := 0; nerr <= c.T; nerr++ {
			msg := randBits(rng, c.K)
			cw, _ := c.Encode(msg)
			recv, injected := flip(rng, cw, nerr)
			res, err := c.Decode(recv)
			if err != nil {
				t.Fatalf("%v: %d errors: %v", c, nerr, err)
			}
			if res.NumErrors != nerr {
				t.Errorf("%v: reported %d, injected %d", c, res.NumErrors, nerr)
			}
			for i := range msg {
				if res.Message[i] != msg[i] {
					t.Fatalf("%v: corrupted message (%d errors at %v)", c, nerr, injected)
				}
			}
		}
	}
}

func TestDecodeBeyondTUsuallyFails(t *testing.T) {
	c := Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(3))
	fails := 0
	for trial := 0; trial < 50; trial++ {
		msg := randBits(rng, c.K)
		cw, _ := c.Encode(msg)
		recv, _ := flip(rng, cw, c.T+2)
		res, err := c.Decode(recv)
		if err != nil {
			fails++
			continue
		}
		same := true
		for i := range msg {
			if res.Message[i] != msg[i] {
				same = false
			}
		}
		if same {
			t.Fatal("t+2 errors decoded to the original message")
		}
	}
	if fails == 0 {
		t.Error("no failures beyond capacity (suspicious)")
	}
}

func TestEvenSyndromeSquareIdentity(t *testing.T) {
	// For binary codes S_{2i} = S_i^2; SyndromesFast relies on it.
	c := Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		msg := randBits(rng, c.K)
		cw, _ := c.Encode(msg)
		recv, _ := flip(rng, cw, rng.Intn(c.T+1))
		s := c.Syndromes(recv)
		for i := 1; 2*i <= len(s); i++ {
			if s[2*i-1] != c.F.Sqr(s[i-1]) {
				t.Fatalf("S_%d != S_%d^2", 2*i, i)
			}
		}
		sf := c.SyndromesFast(recv)
		for i := range s {
			if s[i] != sf[i] {
				t.Fatal("SyndromesFast mismatch")
			}
		}
	}
}

func TestClosedFormELPMatchesBMA(t *testing.T) {
	// For t in 1..3, Peterson's closed form must locate exactly the same
	// error positions as Berlekamp-Massey for every correctable pattern.
	for _, tt := range []int{1, 2, 3} {
		c := Must(gf.MustDefault(5), tt)
		rng := rand.New(rand.NewSource(int64(5 + tt)))
		for trial := 0; trial < 60; trial++ {
			msg := randBits(rng, c.K)
			cw, _ := c.Encode(msg)
			nerr := rng.Intn(tt + 1)
			recv, _ := flip(rng, cw, nerr)
			synd := c.Syndromes(recv)
			cf, ok := c.ClosedFormELP(synd)
			if !ok {
				t.Fatalf("t=%d nerr=%d: closed form gave up", tt, nerr)
			}
			bma := c.ErrorLocator(synd)
			pcf := c.ChienSearch(cf)
			pbma := c.ChienSearch(bma)
			if len(pcf) != len(pbma) {
				t.Fatalf("t=%d nerr=%d: closed form found %v, BMA %v", tt, nerr, pcf, pbma)
			}
			for i := range pcf {
				if pcf[i] != pbma[i] {
					t.Fatalf("t=%d nerr=%d: position mismatch %v vs %v", tt, nerr, pcf, pbma)
				}
			}
		}
	}
}

func TestDecodeClosedForm(t *testing.T) {
	c := Must(gf.MustDefault(6), 3)
	rng := rand.New(rand.NewSource(8))
	for nerr := 0; nerr <= 3; nerr++ {
		msg := randBits(rng, c.K)
		cw, _ := c.Encode(msg)
		recv, _ := flip(rng, cw, nerr)
		res, err := c.DecodeClosedForm(recv)
		if err != nil {
			t.Fatalf("nerr=%d: %v", nerr, err)
		}
		for i := range msg {
			if res.Message[i] != msg[i] {
				t.Fatalf("nerr=%d: corrupted", nerr)
			}
		}
	}
}

func TestDecodeLengthValidation(t *testing.T) {
	c := Must(gf.MustDefault(5), 5)
	if _, err := c.Decode(make([]byte, 30)); err == nil {
		t.Error("short word accepted")
	}
}

func TestMinimumDistanceSample(t *testing.T) {
	// Every nonzero codeword of BCH(15,5,3) must have weight >= 7 (d >= 2t+1).
	c := Must(gf.MustDefault(4), 3)
	for v := 1; v < 1<<c.K; v++ {
		msg := make([]byte, c.K)
		for i := 0; i < c.K; i++ {
			msg[i] = byte(v >> i & 1)
		}
		cw, _ := c.Encode(msg)
		w := 0
		for _, b := range cw {
			w += int(b)
		}
		if w < 2*c.T+1 {
			t.Fatalf("codeword weight %d < %d", w, 2*c.T+1)
		}
	}
}

func TestRateString(t *testing.T) {
	c := Must(gf.MustDefault(5), 5)
	if r := c.Rate(); r < 0.354 || r > 0.356 {
		t.Errorf("rate = %v", r)
	}
	if c.String() != "BCH(31,11,5)/GF(2^5)/x^5+x^2+1" {
		t.Errorf("String() = %q", c.String())
	}
}
