//go:build !race

package bch

const raceEnabled = false
