// Package bch implements binary BCH encoding and decoding over GF(2^m),
// the decoder datapath of the paper's Fig. 1(a): syndrome calculation,
// error-locator computation (Berlekamp-Massey or the closed-form solver
// for t <= 3), Chien search, and bit-flip correction. Binary BCH needs no
// Forney step — the error magnitude is always 1.
//
// The paper's flagship configuration is BCH(31,11,5) over GF(2^5);
// BCH(63,51,2)-style codes appear in IEEE 802.15.6 body-area networks.
//
// Concurrency: a *Code is immutable after construction (generator,
// cosets and field tables are only written by New), and Encode, Decode
// and the syndrome/locator helpers keep all per-call state in local
// buffers, so one shared instance is safe for concurrent use by many
// goroutines — the contract the repro/internal/pipeline worker pools
// depend on.
package bch

import (
	"fmt"
	"sort"

	"repro/internal/gf"
	"repro/internal/gfpoly"
)

// Code is a binary BCH code of length n = 2^m - 1. Codewords are bit
// slices (each element 0 or 1); index 0 is transmitted first and carries
// the highest-degree coefficient of the codeword polynomial.
type Code struct {
	F *gf.Field // the locator field GF(2^m)
	N int       // codeword length in bits, 2^m - 1
	K int       // information bits
	T int       // designed error-correcting capability

	gen    gfpoly.Poly // generator polynomial with 0/1 coefficients
	cosets [][]int     // cyclotomic cosets used (mod 2^m-1)

	// Hot-path precomputation (immutable after New).
	kern     *gf.Kernels         // the field's bulk slice kernels
	roots    []gf.Elem           // alpha^1 .. alpha^2t, the syndrome evaluation points
	oddRoots []gf.Elem           // alpha^1, alpha^3, ... — SyndromesFast evaluation points
	synPlan  *gf.BitSyndromePlan // precomputed plan over roots
	oddPlan  *gf.BitSyndromePlan // precomputed plan over oddRoots
}

// New constructs the narrow-sense binary BCH code of designed distance
// 2t+1 over the field f: n = 2^m-1 and k = n - deg(g) where g is the LCM
// of the minimal polynomials of alpha^1 .. alpha^2t.
func New(f *gf.Field, t int) (*Code, error) {
	n := f.N()
	if t < 1 || 2*t >= n {
		return nil, fmt.Errorf("bch: t=%d out of range for n=%d", t, n)
	}
	if !f.GeneratorIsX() {
		return nil, fmt.Errorf("bch: field polynomial %#x must be primitive", f.Poly())
	}
	c := &Code{F: f, N: n, T: t}
	// Collect cyclotomic cosets of 1..2t and build g = prod of minimal polys.
	seen := make([]bool, n)
	g := gfpoly.One(f)
	for i := 1; i <= 2*t; i++ {
		e := i % n
		if seen[e] {
			continue
		}
		coset := cyclotomicCoset(e, n)
		for _, j := range coset {
			seen[j] = true
		}
		c.cosets = append(c.cosets, coset)
		g = g.Mul(minimalPoly(f, coset))
	}
	c.gen = g
	c.K = n - g.Degree()
	if c.K <= 0 {
		return nil, fmt.Errorf("bch: t=%d leaves no information bits (deg g = %d)", t, g.Degree())
	}
	c.kern = f.Kernels()
	c.roots = make([]gf.Elem, 2*t)
	for j := range c.roots {
		c.roots[j] = f.AlphaPow(j + 1)
	}
	c.oddRoots = make([]gf.Elem, t)
	for i := range c.oddRoots {
		c.oddRoots[i] = f.AlphaPow(2*i + 1)
	}
	// Bit-syndrome plans: amortize the per-root minimal-polynomial and
	// Barrett precomputation once per code, unlocking the carry-less
	// fold route for long words (the lookup tiers still serve short
	// ones; the plan dispatches by the calibrated crossover).
	c.synPlan = c.kern.NewBitSyndromePlan(c.roots)
	c.oddPlan = c.kern.NewBitSyndromePlan(c.oddRoots)
	return c, nil
}

// Must is New but panics on error.
func Must(f *gf.Field, t int) *Code {
	c, err := New(f, t)
	if err != nil {
		panic(err)
	}
	return c
}

// NewParams constructs BCH(n,k,t) with n = 2^m-1, verifying that the
// narrow-sense construction with capability t yields exactly k information
// bits (e.g. (31,11,5), (63,51,2), (15,7,2)).
func NewParams(m, n, k, t int) (*Code, error) {
	f, err := gf.NewDefault(m)
	if err != nil {
		return nil, err
	}
	if n != f.N() {
		return nil, fmt.Errorf("bch: n=%d != 2^%d-1", n, m)
	}
	c, err := New(f, t)
	if err != nil {
		return nil, err
	}
	if c.K != k {
		return nil, fmt.Errorf("bch: construction gives k=%d, want %d", c.K, k)
	}
	return c, nil
}

// cyclotomicCoset returns the 2-cyclotomic coset of e modulo n, sorted.
func cyclotomicCoset(e, n int) []int {
	var coset []int
	j := e
	for {
		coset = append(coset, j)
		j = (2 * j) % n
		if j == e {
			break
		}
	}
	sort.Ints(coset)
	return coset
}

// minimalPoly returns the minimal polynomial of alpha^e over GF(2):
// prod_{j in coset} (x - alpha^j). All coefficients land in {0,1}.
func minimalPoly(f *gf.Field, coset []int) gfpoly.Poly {
	p := gfpoly.One(f)
	for _, j := range coset {
		p = p.Mul(gfpoly.New(f, f.AlphaPow(j), 1))
	}
	for _, c := range p.Coeffs {
		if c > 1 {
			panic("bch: minimal polynomial has non-binary coefficient")
		}
	}
	return p
}

// Generator returns the generator polynomial (binary coefficients).
func (c *Code) Generator() gfpoly.Poly { return c.gen.Clone() }

// GeneratorBits returns the generator as a bit slice, index = power of x.
func (c *Code) GeneratorBits() []byte {
	out := make([]byte, c.gen.Degree()+1)
	for i := range out {
		out[i] = byte(c.gen.Coeff(i))
	}
	return out
}

// Rate returns the code rate k/n.
func (c *Code) Rate() float64 { return float64(c.K) / float64(c.N) }

// String implements fmt.Stringer.
func (c *Code) String() string {
	return fmt.Sprintf("BCH(%d,%d,%d)/%v", c.N, c.K, c.T, c.F)
}

// Encode systematically encodes k message bits (values 0/1) into an n-bit
// codeword: message bits first, parity bits last.
func (c *Code) Encode(msg []byte) ([]byte, error) {
	if len(msg) != c.K {
		return nil, fmt.Errorf("bch: message length %d, want %d", len(msg), c.K)
	}
	nk := c.N - c.K
	rem := make([]byte, nk) // rem[j] = coefficient of x^j
	gbits := c.GeneratorBits()
	for i := 0; i < c.K; i++ {
		b := msg[i]
		if b > 1 {
			return nil, fmt.Errorf("bch: message bit %d has value %d", i, b)
		}
		feedback := b ^ rem[nk-1]
		copy(rem[1:], rem[:nk-1])
		rem[0] = 0
		if feedback == 1 {
			for j := 0; j < nk; j++ {
				rem[j] ^= gbits[j]
			}
		}
	}
	out := make([]byte, c.N)
	copy(out, msg)
	for j := 0; j < nk; j++ {
		out[c.K+j] = rem[nk-1-j]
	}
	return out, nil
}

// Syndromes evaluates the 2t syndromes S_i = r(alpha^i), i = 1..2t, of the
// received bit vector by Horner's rule. For binary codes the even
// syndromes obey S_{2i} = S_i^2 — the identity the hardware square
// primitive exploits; they are still all computed here so the decoder can
// detect inconsistencies.
func (c *Code) Syndromes(recv []byte) []gf.Elem {
	return c.SyndromesTo(make([]gf.Elem, 2*c.T), recv)
}

// SyndromesTo is Syndromes writing into caller scratch: dst must have
// length at least 2t and the filled prefix dst[:2t] is returned. Hot
// decode loops reuse one scratch slice across words and allocate
// nothing per call.
func (c *Code) SyndromesTo(dst []gf.Elem, recv []byte) []gf.Elem {
	if len(dst) < 2*c.T {
		panic(fmt.Sprintf("bch: syndrome scratch length %d, want >= %d", len(dst), 2*c.T))
	}
	s := dst[:2*c.T]
	c.synPlan.Run(s, recv)
	return s
}

// syndromesScalar is the bit-at-a-time reference implementation of
// Syndromes, kept as the behavioral baseline for tests and benchmarks.
func (c *Code) syndromesScalar(recv []byte) []gf.Elem {
	s := make([]gf.Elem, 2*c.T)
	for j := range s {
		x := c.F.AlphaPow(j + 1)
		var acc gf.Elem
		for _, bit := range recv {
			acc = c.F.Mul(acc, x) ^ gf.Elem(bit)
		}
		s[j] = acc
	}
	return s
}

// SyndromesFast computes only the t odd syndromes directly and derives the
// even ones by squaring (S_2i = S_i^2), halving the Horner work — the
// optimization available to binary BCH.
func (c *Code) SyndromesFast(recv []byte) []gf.Elem {
	s := make([]gf.Elem, 2*c.T)
	odd := make([]gf.Elem, c.T)
	c.oddPlan.Run(odd, recv)
	for i := 1; i <= 2*c.T; i++ {
		if i%2 == 0 {
			s[i-1] = c.F.Sqr(s[i/2-1])
		} else {
			s[i-1] = odd[(i-1)/2]
		}
	}
	return s
}

// ErrorLocator runs Berlekamp-Massey on the syndromes and returns the
// error-locator polynomial.
func (c *Code) ErrorLocator(synd []gf.Elem) gfpoly.Poly {
	return gfpoly.BerlekampMassey(c.F, synd)
}

// ClosedFormELP computes the error-locator polynomial for t <= 3 with
// Peterson's closed-form expressions — the "Closed Form ELP" kernel the
// paper cites in Fig. 1(a). It returns ok=false when the syndrome pattern
// is outside the closed form's reach (more than t errors, or t > 3).
func (c *Code) ClosedFormELP(synd []gf.Elem) (lambda gfpoly.Poly, ok bool) {
	f := c.F
	s1 := synd[0]
	var s3, s5 gf.Elem
	if len(synd) >= 3 {
		s3 = synd[2]
	}
	if len(synd) >= 5 {
		s5 = synd[4]
	}
	switch {
	case c.T == 1:
		if s1 == 0 {
			return gfpoly.One(f), true
		}
		return gfpoly.New(f, 1, s1), true
	case c.T == 2:
		if s1 == 0 && s3 == 0 {
			return gfpoly.One(f), true
		}
		if s1 == 0 {
			return gfpoly.Poly{}, false // odd pattern: >2 errors
		}
		if s3 == f.Pow(s1, 3) {
			// single error
			return gfpoly.New(f, 1, s1), true
		}
		sigma2 := f.Div(s3^f.Pow(s1, 3), s1)
		return gfpoly.New(f, 1, s1, sigma2), true
	case c.T == 3:
		if s1 == 0 && s3 == 0 && s5 == 0 {
			return gfpoly.One(f), true
		}
		if s1 != 0 && s3 == f.Pow(s1, 3) && s5 == f.Pow(s1, 5) {
			return gfpoly.New(f, 1, s1), true
		}
		d := f.Pow(s1, 3) ^ s3
		if s1 != 0 && d != 0 {
			num := f.Mul(f.Sqr(s1), s3) ^ s5
			sigma2 := f.Div(num, d)
			sigma3 := d ^ f.Mul(s1, sigma2)
			if sigma3 == 0 {
				// degenerates to two errors
				return gfpoly.New(f, 1, s1, sigma2), true
			}
			return gfpoly.New(f, 1, s1, sigma2, sigma3), true
		}
		if s1 == 0 && s3 != 0 {
			// sigma1 = 0, sigma2 = s5/s3, sigma3 = s3 (from Newton identities)
			return gfpoly.New(f, 1, 0, f.Div(s5, s3), s3), true
		}
		return gfpoly.Poly{}, false
	default:
		return gfpoly.Poly{}, false
	}
}

// ChienSearch returns the codeword bit indices located by Lambda (same
// locator convention as package rs).
func (c *Code) ChienSearch(lambda gfpoly.Poly) []int {
	var pos []int
	for p := 0; p < c.N; p++ {
		if lambda.Eval(c.F.AlphaPow(-p)) == 0 {
			pos = append(pos, c.N-1-p)
		}
	}
	return pos
}

// DecodeResult carries the diagnostic output of a decode.
type DecodeResult struct {
	Corrected []byte    // corrected codeword bits
	Message   []byte    // first k bits of Corrected
	NumErrors int       // bit errors corrected
	Positions []int     // indices flipped
	Syndromes []gf.Elem // syndromes of the received word
}

// Decode corrects up to t bit errors in recv. It returns an error for
// uncorrectable words.
func (c *Code) Decode(recv []byte) (*DecodeResult, error) {
	return c.decode(recv, false)
}

// DecodeClosedForm is Decode but uses the closed-form ELP solver (t <= 3)
// instead of Berlekamp-Massey, falling back to BMA when the closed form
// does not apply.
func (c *Code) DecodeClosedForm(recv []byte) (*DecodeResult, error) {
	return c.decode(recv, true)
}

func (c *Code) decode(recv []byte, closedForm bool) (*DecodeResult, error) {
	if len(recv) != c.N {
		return nil, fmt.Errorf("bch: received length %d, want %d", len(recv), c.N)
	}
	word := append([]byte(nil), recv...)
	synd := c.Syndromes(word)
	res := &DecodeResult{Corrected: word, Syndromes: synd}
	errFree := true
	for _, s := range synd {
		if s != 0 {
			errFree = false
			break
		}
	}
	if errFree {
		res.Message = word[:c.K]
		return res, nil
	}
	var lambda gfpoly.Poly
	if closedForm && c.T <= 3 {
		var ok bool
		lambda, ok = c.ClosedFormELP(synd)
		if !ok {
			lambda = c.ErrorLocator(synd)
		}
	} else {
		lambda = c.ErrorLocator(synd)
	}
	nu := lambda.Degree()
	if nu > c.T {
		return nil, fmt.Errorf("bch: locator degree %d exceeds t=%d (uncorrectable)", nu, c.T)
	}
	pos := c.ChienSearch(lambda)
	if len(pos) != nu {
		return nil, fmt.Errorf("bch: Chien found %d roots for degree-%d locator (uncorrectable)", len(pos), nu)
	}
	for _, p := range pos {
		word[p] ^= 1
	}
	// Verify the corrected word.
	for _, s := range c.Syndromes(word) {
		if s != 0 {
			return nil, fmt.Errorf("bch: correction verification failed (uncorrectable word)")
		}
	}
	res.Corrected = word
	res.Message = word[:c.K]
	res.NumErrors = nu
	res.Positions = pos
	return res, nil
}
