//go:build race

package bch

// raceEnabled reports whether the race detector is active. Race
// instrumentation perturbs allocation accounting, so allocation-count
// assertions are skipped under -race (the functional checks still run).
const raceEnabled = true
