package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
)

// Binary instruction encoding. GF instructions keep the paper's 26-bit
// format (EncodeGF) embedded in a 32-bit word under a dedicated marker;
// scalar instructions use three RISC-style formats:
//
//	R-type  (register ops):        op(6) rd(4) rd2(4) rs1(4) rs2(4) pad(10)
//	I-type  (reg + immediate):     op(6) rd(4) rs1(4) rs2(4) imm14(signed)
//	M-type  (movi/movhi/branches): op(6) rd(4) pad(6) imm16
//
// The immediate ranges are architectural limits: I-type offsets span
// +/-8191, M-type immediates 16 bits (movi sign-extends, movhi is raw),
// branch targets are absolute instruction indices up to 65535.

const gfMarker = uint32(0x3F) << 26

// instFormat classifies an opcode for encoding.
func instFormat(op Op) byte {
	switch op {
	case NOP, HALT, RET, MOV, MVN, ADD, SUB, AND, ORR, EOR, LSL, LSR, MUL,
		CMP, LDRR, LDRBR, STRR, STRBR:
		return 'R'
	case ADDI, SUBI, ANDI, LSLI, LSRI, CMPI, LDR, LDRB, STR, STRB:
		return 'I'
	case MOVI, MOVHI, B, BEQ, BNE, BLT, BGE, BGT, BLE, BLO, BHS, BL:
		return 'M'
	default:
		if op >= GFCONF && op <= GF32MUL {
			return 'G'
		}
		return 0
	}
}

// Encode packs an instruction into a 32-bit word. Instructions with
// unresolved symbols or out-of-range immediates return an error.
func Encode(i Inst) (uint32, error) {
	if i.Sym != "" && instFormat(i.Op) != 'M' {
		return 0, fmt.Errorf("isa: cannot encode unresolved symbol %q", i.Sym)
	}
	switch instFormat(i.Op) {
	case 'G':
		w, err := EncodeGF(i)
		if err != nil {
			return 0, err
		}
		return gfMarker | w, nil
	case 'R':
		return uint32(i.Op)<<26 | uint32(i.Rd&0xF)<<22 | uint32(i.Rd2&0xF)<<18 |
			uint32(i.Rs1&0xF)<<14 | uint32(i.Rs2&0xF)<<10, nil
	case 'I':
		if i.Imm < -(1<<13) || i.Imm >= 1<<13 {
			return 0, fmt.Errorf("isa: immediate %d out of I-type range", i.Imm)
		}
		return uint32(i.Op)<<26 | uint32(i.Rd&0xF)<<22 | uint32(i.Rs1&0xF)<<18 |
			uint32(i.Rs2&0xF)<<14 | uint32(i.Imm)&0x3FFF, nil
	case 'M':
		if i.Imm < -(1<<15) || i.Imm >= 1<<16 {
			return 0, fmt.Errorf("isa: immediate %d out of M-type range", i.Imm)
		}
		return uint32(i.Op)<<26 | uint32(i.Rd&0xF)<<22 | uint32(i.Imm)&0xFFFF, nil
	}
	return 0, fmt.Errorf("isa: unencodable opcode %d", i.Op)
}

// Decode unpacks a word produced by Encode. M-type immediates are
// sign-extended for movi and branch-absolute for branches.
func Decode(w uint32) (Inst, error) {
	if w&gfMarker == gfMarker {
		return DecodeGF(w &^ gfMarker)
	}
	op := Op(w >> 26)
	switch instFormat(op) {
	case 'R':
		return Inst{
			Op:  op,
			Rd:  uint8(w >> 22 & 0xF),
			Rd2: uint8(w >> 18 & 0xF),
			Rs1: uint8(w >> 14 & 0xF),
			Rs2: uint8(w >> 10 & 0xF),
		}, nil
	case 'I':
		imm := int32(w & 0x3FFF)
		if imm >= 1<<13 {
			imm -= 1 << 14
		}
		return Inst{
			Op:  op,
			Rd:  uint8(w >> 22 & 0xF),
			Rs1: uint8(w >> 18 & 0xF),
			Rs2: uint8(w >> 14 & 0xF),
			Imm: imm,
		}, nil
	case 'M':
		imm := int32(w & 0xFFFF)
		if op == MOVI && imm >= 1<<15 {
			imm -= 1 << 16 // movi sign-extends
		}
		return Inst{Op: op, Rd: uint8(w >> 22 & 0xF), Imm: imm}, nil
	}
	return Inst{}, fmt.Errorf("isa: undecodable word %#x", w)
}

// progMagic identifies a serialized program image.
var progMagic = [4]byte{'G', 'F', 'P', '1'}

// MarshalBinary serializes the assembled program (instruction words +
// data image). Symbol tables are not preserved — the image is what a
// loader would flash.
func (p *Program) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(progMagic[:])
	binary.Write(&buf, binary.LittleEndian, uint32(len(p.Insts)))
	binary.Write(&buf, binary.LittleEndian, uint32(len(p.Data)))
	for idx, in := range p.Insts {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d (%v): %w", idx, in, err)
		}
		binary.Write(&buf, binary.LittleEndian, w)
	}
	buf.Write(p.Data)
	return buf.Bytes(), nil
}

// UnmarshalBinary reverses MarshalBinary.
func (p *Program) UnmarshalBinary(data []byte) error {
	if len(data) < 12 || !bytes.Equal(data[:4], progMagic[:]) {
		return fmt.Errorf("isa: bad program image")
	}
	nInst := binary.LittleEndian.Uint32(data[4:8])
	nData := binary.LittleEndian.Uint32(data[8:12])
	need := 12 + 4*int(nInst) + int(nData)
	if len(data) != need {
		return fmt.Errorf("isa: program image length %d, want %d", len(data), need)
	}
	insts := make([]Inst, nInst)
	off := 12
	for i := range insts {
		w := binary.LittleEndian.Uint32(data[off:])
		in, err := Decode(w)
		if err != nil {
			return fmt.Errorf("isa: word %d: %w", i, err)
		}
		insts[i] = in
		off += 4
	}
	p.Insts = insts
	p.Data = append([]byte(nil), data[off:]...)
	p.Labels = map[string]int{}
	p.DataLabels = map[string]int{}
	return nil
}

// Disassemble renders the program as assembly text with instruction
// indices, suitable for inspection (labels reappear as L<idx> comments).
func Disassemble(p *Program) string {
	// Invert the label table for annotation.
	byIdx := map[int][]string{}
	for name, idx := range p.Labels {
		byIdx[idx] = append(byIdx[idx], name)
	}
	var sb strings.Builder
	for i, in := range p.Insts {
		for _, l := range byIdx[i] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "%4d:\t%s\n", i, in.String())
	}
	if len(p.Data) > 0 {
		fmt.Fprintf(&sb, ".data\t; %d bytes\n", len(p.Data))
	}
	return sb.String()
}
