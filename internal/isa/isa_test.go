package isa

import (
	"strings"
	"testing"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		; a tiny program
		movi r1, #10
		movi r2, #0x20
	loop:
		subi r1, r1, #1
		cmpi r1, #0
		bne loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 6 {
		t.Fatalf("got %d instructions", len(p.Insts))
	}
	if p.Labels["loop"] != 2 {
		t.Fatalf("loop label = %d", p.Labels["loop"])
	}
	if p.Insts[4].Op != BNE || p.Insts[4].Imm != 2 {
		t.Fatalf("bne not resolved: %+v", p.Insts[4])
	}
	if p.Insts[1].Imm != 0x20 {
		t.Fatal("hex immediate not parsed")
	}
}

func TestAssembleDataSection(t *testing.T) {
	p, err := Assemble(`
		movi r1, =table
		ldr r2, [r1, #4]
		halt
	.data
	pad: .space 3
	table:
		.word 0x11223344, 2
		.byte 7, 8
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.DataLabels["table"] != 3 {
		t.Fatalf("table at %d", p.DataLabels["table"])
	}
	if p.Insts[0].Imm != 3 {
		t.Fatalf("=table resolved to %d", p.Insts[0].Imm)
	}
	if len(p.Data) != 3+8+2 {
		t.Fatalf("data length %d", len(p.Data))
	}
	if p.Data[3] != 0x44 || p.Data[6] != 0x11 {
		t.Fatal("little-endian .word layout wrong")
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p, err := Assemble(`
		ldr r1, [r2]
		ldr r1, [r2, #8]
		ldr r1, [r2, r3]
		ldrb r4, [r5, r6]
		str r1, [r2, #4]
		str r1, [r2, r3]
		strb r1, [r2, r3]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{LDR, LDR, LDRR, LDRBR, STR, STRR, STRBR, HALT}
	for i, op := range want {
		if p.Insts[i].Op != op {
			t.Errorf("inst %d: op %v, want %v", i, p.Insts[i].Op, op)
		}
	}
	if p.Insts[2].Rs2 != 3 {
		t.Error("register offset not parsed")
	}
	if p.Insts[5].Rd2 != 3 || p.Insts[5].Rs2 != 1 {
		t.Errorf("strr operands wrong: %+v", p.Insts[5])
	}
}

func TestAssembleGFInstructions(t *testing.T) {
	p, err := Assemble(`
		movi r1, =field
		gfconf r1
		gfmul r4, r2, r3
		gfmulinv r5, r4
		gfsq r6, r5
		gfpow r7, r6, r2
		gfadd r8, r7, r2
		gf32mul r9, r10, r2, r3
		halt
	.data
	field: .word 0x11d
	`)
	if err != nil {
		t.Fatal(err)
	}
	gf32 := p.Insts[7]
	if gf32.Op != GF32MUL || gf32.Rd != 9 || gf32.Rd2 != 10 || gf32.Rs1 != 2 || gf32.Rs2 != 3 {
		t.Fatalf("gf32mul parsed wrong: %+v", gf32)
	}
	for i := 1; i <= 7; i++ {
		if !p.Insts[i].IsGF() {
			t.Errorf("inst %d not recognized as GF", i)
		}
	}
	if p.Insts[0].IsGF() {
		t.Error("movi recognized as GF")
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus r1, r2",
		"movi r16, #1",
		"movi r1",
		"add r1, r2",
		"ldr r1, r2",
		"b 123abc",
		"movhi r1, =label",
		".data\nadd r1, r2, r3",
		"dup: nop\ndup: nop",
		"movi r1, =missing\nhalt",
		"bne nowhere\nhalt",
		"ldrr r1, [r2, #4]",
		".space -1",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("accepted bad program %q", src)
		}
	}
}

func TestRegisterAliases(t *testing.T) {
	p, err := Assemble("mov sp, lr\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Rd != SP || p.Insts[0].Rs1 != LR {
		t.Fatalf("aliases wrong: %+v", p.Insts[0])
	}
}

func TestEncodeDecodeGFRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: GFMUL, Rd: 4, Rs1: 2, Rs2: 3},
		{Op: GFMULINV, Rd: 5, Rs1: 4},
		{Op: GFSQ, Rd: 6, Rs1: 5},
		{Op: GFPOW, Rd: 7, Rs1: 6, Rs2: 2},
		{Op: GFADD, Rd: 8, Rs1: 7, Rs2: 2},
		{Op: GF32MUL, Rd: 9, Rd2: 10, Rs1: 2, Rs2: 3},
		{Op: GFCONF, Rs1: 1},
	}
	for _, in := range cases {
		w, err := EncodeGF(in)
		if err != nil {
			t.Fatal(err)
		}
		if w >= 1<<26 {
			t.Errorf("%v encodes to %d bits (> 26)", in, 32)
		}
		back, err := DecodeGF(w)
		if err != nil {
			t.Fatal(err)
		}
		if back != in {
			t.Errorf("round trip: %+v -> %+v", in, back)
		}
	}
	if _, err := EncodeGF(Inst{Op: ADD}); err == nil {
		t.Error("encoded non-GF instruction")
	}
	if _, err := DecodeGF(0); err == nil {
		t.Error("decoded invalid GF word")
	}
}

func TestInstString(t *testing.T) {
	src := `
		nop
		movi r1, #5
		add r2, r1, r1
		ldr r3, [r2, #4]
		str r3, [r2, #8]
		gfmul r4, r2, r3
		gf32mul r5, r6, r1, r2
		beq done
	done:
		halt
	`
	p := MustAssemble(src)
	for _, in := range p.Insts {
		s := in.String()
		if s == "" || strings.HasPrefix(s, "op") {
			t.Errorf("bad String() for %+v: %q", in, s)
		}
	}
	if p.Insts[5].String() != "gfmul r4, r2, r3" {
		t.Errorf("gfmul String() = %q", p.Insts[5].String())
	}
}

func TestIsBranch(t *testing.T) {
	if !(Inst{Op: B}).IsBranch() || !(Inst{Op: RET}).IsBranch() || !(Inst{Op: HALT}).IsBranch() {
		t.Error("branch classification wrong")
	}
	if (Inst{Op: ADD}).IsBranch() {
		t.Error("add classified as branch")
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble("start: movi r1, #1\nb start")
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["start"] != 0 || len(p.Insts) != 2 {
		t.Fatal("same-line label broken")
	}
}
