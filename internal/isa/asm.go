package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled program: the instruction stream plus the initial
// data-memory image and the resolved symbol tables.
type Program struct {
	Insts      []Inst
	Data       []byte
	Labels     map[string]int // code label -> instruction index
	DataLabels map[string]int // data label -> byte address
}

// Assemble translates assembly text into a Program. The syntax is
// described in the package documentation; briefly:
//
//	.text / .data         section switches (.text is the default)
//	label:                code or data label
//	movi r1, #42          immediate (decimal or 0x hex)
//	movi r1, =buf         address of data label
//	ldr  r2, [r1, #4]     word load, immediate offset
//	ldrr r2, [r1, r3]     word load, register offset
//	gfmul r4, r2, r3      GF instructions per Table 1
//	.word 1, 2, 3         32-bit little-endian data
//	.byte 1, 2            bytes
//	.space 64             zero fill
//	; or // comments
func Assemble(src string) (*Program, error) {
	p := &Program{Labels: map[string]int{}, DataLabels: map[string]int{}}
	type pending struct {
		instIdx int
		line    int
	}
	inData := false

	lines := strings.Split(src, "\n")
	// Pass 1: parse instructions and data, record labels, leave symbolic
	// references in Sym.
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several, possibly followed by an instruction).
		for {
			idx := strings.Index(line, ":")
			if idx < 0 || strings.ContainsAny(line[:idx], " \t,[") {
				break
			}
			label := line[:idx]
			if !validIdent(label) {
				return nil, fmt.Errorf("line %d: bad label %q", ln+1, label)
			}
			if inData {
				if _, dup := p.DataLabels[label]; dup {
					return nil, fmt.Errorf("line %d: duplicate data label %q", ln+1, label)
				}
				p.DataLabels[label] = len(p.Data)
			} else {
				if _, dup := p.Labels[label]; dup {
					return nil, fmt.Errorf("line %d: duplicate label %q", ln+1, label)
				}
				p.Labels[label] = len(p.Insts)
			}
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		fields := splitOperands(line)
		mn := strings.ToLower(fields[0])
		args := fields[1:]
		switch mn {
		case ".text":
			inData = false
			continue
		case ".data":
			inData = true
			continue
		case ".word":
			for _, a := range args {
				v, err := parseImm(a)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				p.Data = append(p.Data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			continue
		case ".byte":
			for _, a := range args {
				v, err := parseImm(a)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", ln+1, err)
				}
				p.Data = append(p.Data, byte(v))
			}
			continue
		case ".space":
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: .space needs one size", ln+1)
			}
			n, err := parseImm(args[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("line %d: bad .space size", ln+1)
			}
			p.Data = append(p.Data, make([]byte, n)...)
			continue
		}
		if inData {
			return nil, fmt.Errorf("line %d: instruction %q in .data section", ln+1, mn)
		}
		inst, err := parseInst(mn, args)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln+1, err)
		}
		p.Insts = append(p.Insts, inst)
	}

	// Pass 2: resolve symbols.
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Sym == "" {
			continue
		}
		if in.Op == MOVI { // =label -> data address
			addr, ok := p.DataLabels[in.Sym]
			if !ok {
				return nil, fmt.Errorf("undefined data label %q", in.Sym)
			}
			in.Imm = int32(addr)
			in.Sym = ""
			continue
		}
		tgt, ok := p.Labels[in.Sym]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", in.Sym)
		}
		in.Imm = int32(tgt)
		// Keep Sym for disassembly readability.
	}
	return p, nil
}

// MustAssemble is Assemble but panics on error; for tests and fixed kernels.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits "op a, b, [c, #4]" into ["op", "a", "b", "[c, #4]"].
func splitOperands(line string) []string {
	var out []string
	// First token = mnemonic.
	line = strings.TrimSpace(line)
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return []string{line}
	}
	out = append(out, line[:sp])
	rest := strings.TrimSpace(line[sp+1:])
	depth := 0
	start := 0
	for i := 0; i <= len(rest); i++ {
		if i == len(rest) || (rest[i] == ',' && depth == 0) {
			tok := strings.TrimSpace(rest[start:i])
			if tok != "" {
				out = append(out, tok)
			}
			start = i + 1
			continue
		}
		switch rest[i] {
		case '[':
			depth++
		case ']':
			depth--
		}
	}
	return out
}

func parseReg(s string) (uint8, error) {
	switch strings.ToLower(s) {
	case "sp":
		return SP, nil
	case "lr":
		return LR, nil
	}
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int32, error) {
	s = strings.TrimPrefix(s, "#")
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// parseMem parses "[rn, #imm]" or "[rn, rm]" or "[rn]".
func parseMem(s string) (base uint8, off int32, offReg uint8, regOff bool, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, 0, false, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	parts := strings.Split(inner, ",")
	base, err = parseReg(strings.TrimSpace(parts[0]))
	if err != nil {
		return
	}
	if len(parts) == 1 {
		return base, 0, 0, false, nil
	}
	if len(parts) != 2 {
		return 0, 0, 0, false, fmt.Errorf("bad memory operand %q", s)
	}
	arg := strings.TrimSpace(parts[1])
	if r, rerr := parseReg(arg); rerr == nil {
		return base, 0, r, true, nil
	}
	off, err = parseImm(arg)
	return base, off, 0, false, err
}

func parseInst(mn string, args []string) (Inst, error) {
	op, ok := nameOps[mn]
	if !ok {
		return Inst{}, fmt.Errorf("unknown mnemonic %q", mn)
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mn, n, len(args))
		}
		return nil
	}
	in := Inst{Op: op}
	var err error
	switch op {
	case NOP, HALT, RET:
		return in, need(0)
	case MOV, MVN:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		in.Rs1, err = parseReg(args[1])
		return in, err
	case MOVI, MOVHI:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if strings.HasPrefix(args[1], "=") {
			if op == MOVHI {
				return in, fmt.Errorf("movhi cannot take =label")
			}
			in.Sym = args[1][1:]
			return in, nil
		}
		in.Imm, err = parseImm(args[1])
		return in, err
	case ADD, SUB, AND, ORR, EOR, LSL, LSR, MUL, GFMUL, GFPOW, GFADD:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(args[1]); err != nil {
			return in, err
		}
		in.Rs2, err = parseReg(args[2])
		return in, err
	case ADDI, SUBI, ANDI, LSLI, LSRI:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(args[1]); err != nil {
			return in, err
		}
		in.Imm, err = parseImm(args[2])
		return in, err
	case CMP:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(args[0]); err != nil {
			return in, err
		}
		in.Rs2, err = parseReg(args[1])
		return in, err
	case CMPI:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(args[0]); err != nil {
			return in, err
		}
		in.Imm, err = parseImm(args[1])
		return in, err
	case B, BEQ, BNE, BLT, BGE, BGT, BLE, BLO, BHS, BL:
		if err = need(1); err != nil {
			return in, err
		}
		in.Sym = args[0]
		if !validIdent(in.Sym) {
			return in, fmt.Errorf("bad branch target %q", in.Sym)
		}
		return in, nil
	case LDR, LDRB, LDRR, LDRBR:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		base, off, offReg, regOff, merr := parseMem(args[1])
		if merr != nil {
			return in, merr
		}
		in.Rs1 = base
		if regOff {
			if op == LDR {
				in.Op = LDRR
			} else if op == LDRB {
				in.Op = LDRBR
			}
			in.Rs2 = offReg
		} else {
			if op == LDRR || op == LDRBR {
				return in, fmt.Errorf("%s needs register offset", mn)
			}
			in.Imm = off
		}
		return in, nil
	case STR, STRB, STRR, STRBR:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rs2, err = parseReg(args[0]); err != nil { // value to store
			return in, err
		}
		base, off, offReg, regOff, merr := parseMem(args[1])
		if merr != nil {
			return in, merr
		}
		in.Rs1 = base
		if regOff {
			if op == STR {
				in.Op = STRR
			} else if op == STRB {
				in.Op = STRBR
			}
			in.Rd2 = offReg
		} else {
			if op == STRR || op == STRBR {
				return in, fmt.Errorf("%s needs register offset", mn)
			}
			in.Imm = off
		}
		return in, nil
	case GFCONF:
		if err = need(1); err != nil {
			return in, err
		}
		in.Rs1, err = parseReg(args[0])
		return in, err
	case GFMULINV, GFSQ:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		in.Rs1, err = parseReg(args[1])
		return in, err
	case GF32MUL:
		if err = need(4); err != nil {
			return in, err
		}
		if in.Rd, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Rd2, err = parseReg(args[1]); err != nil {
			return in, err
		}
		if in.Rs1, err = parseReg(args[2]); err != nil {
			return in, err
		}
		in.Rs2, err = parseReg(args[3])
		return in, err
	}
	return in, fmt.Errorf("unhandled mnemonic %q", mn)
}
