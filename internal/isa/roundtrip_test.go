package isa

import (
	"math/rand"
	"testing"
)

// Property: for every non-branch instruction, String() emits valid
// assembly that re-assembles to the identical instruction — the
// assembler and disassembler are mutual inverses.
func TestStringAssembleRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := []Op{
		NOP, HALT, MOV, MOVI, MOVHI, ADD, ADDI, SUB, SUBI, AND, ANDI, ORR,
		EOR, MVN, LSL, LSLI, LSR, LSRI, MUL, CMP, CMPI, RET,
		LDR, LDRR, LDRB, LDRBR, STR, STRR, STRB, STRBR,
		GFCONF, GFMUL, GFMULINV, GFSQ, GFPOW, GFADD, GF32MUL,
	}
	reg := func() uint8 { return uint8(rng.Intn(NumRegs)) }
	for trial := 0; trial < 2000; trial++ {
		in := Inst{
			Op:  ops[rng.Intn(len(ops))],
			Rd:  reg(),
			Rd2: reg(),
			Rs1: reg(),
			Rs2: reg(),
			Imm: int32(rng.Intn(1<<13) - 1<<12),
		}
		// Normalize fields the format does not carry, mirroring what the
		// parser produces.
		switch in.Op {
		case NOP, HALT, RET:
			in.Rd, in.Rd2, in.Rs1, in.Rs2, in.Imm = 0, 0, 0, 0, 0
		case MOV, MVN, GFMULINV, GFSQ:
			in.Rd2, in.Rs2, in.Imm = 0, 0, 0
		case MOVI, MOVHI:
			in.Rd2, in.Rs1, in.Rs2 = 0, 0, 0
			if in.Op == MOVHI && in.Imm < 0 {
				in.Imm = -in.Imm // movhi takes raw 16-bit values
			}
		case ADD, SUB, AND, ORR, EOR, LSL, LSR, MUL, GFMUL, GFPOW, GFADD:
			in.Rd2, in.Imm = 0, 0
		case ADDI, SUBI, ANDI, LSLI, LSRI:
			in.Rd2, in.Rs2 = 0, 0
		case CMP:
			in.Rd, in.Rd2, in.Imm = 0, 0, 0
		case CMPI:
			in.Rd, in.Rd2, in.Rs2 = 0, 0, 0
		case LDR, LDRB:
			in.Rd2, in.Rs2 = 0, 0
		case LDRR, LDRBR:
			in.Rd2, in.Imm = 0, 0
		case STR, STRB:
			in.Rd, in.Rd2 = 0, 0
		case STRR, STRBR:
			in.Rd, in.Imm = 0, 0
		case GFCONF:
			in.Rd, in.Rd2, in.Rs2, in.Imm = 0, 0, 0, 0
		case GF32MUL:
			in.Imm = 0
		}
		src := in.String() + "\nhalt"
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("trial %d: %v failed to re-assemble %q: %v", trial, in.Op, src, err)
		}
		if p.Insts[0] != in {
			t.Fatalf("trial %d: round trip %+v -> %q -> %+v", trial, in, in.String(), p.Insts[0])
		}
	}
}

// Property: the binary encoding round-trips for every instruction the
// text round-trip produces.
func TestStringEncodeConsistency(t *testing.T) {
	srcs := []string{
		"gfmul r1, r2, r3", "addi r4, r5, #100", "movi r6, #-30000",
		"ldr r7, [r8, #12]", "strb r9, [r10, r11]", "gf32mul r1, r2, r3, r4",
	}
	for _, s := range srcs {
		p := MustAssemble(s + "\nhalt")
		w, err := Encode(p.Insts[0])
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		back, err := Decode(w)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if back.String() != p.Insts[0].String() {
			t.Fatalf("%q: binary round trip renders %q", s, back.String())
		}
	}
}
