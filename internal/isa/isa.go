// Package isa defines the instruction set of the programmable Galois
// Field processor: the Table-1 GF instructions (4-way SIMD multiply,
// square, power, multiplicative inverse and add; the single-cycle 32-bit
// carry-free partial product; and the field-configuration load) together
// with the subset of Cortex M0+-style scalar instructions the paper keeps
// for control, integer arithmetic and memory ("Rather than implementing
// the full instruction set of a Cortex M0+, we profile the workloads and
// identify the subset ... needed").
//
// The package provides the symbolic instruction representation, binary
// encoding/decoding (GF instructions use the paper's 26-bit format:
// 10-bit opcode + 16-bit register field), and a two-pass assembler.
package isa

import "fmt"

// Op enumerates the instruction opcodes.
type Op uint8

// Scalar (M0+ subset) opcodes.
const (
	NOP Op = iota
	HALT
	MOV   // MOV rd, rs
	MOVI  // MOVI rd, #imm16 (sign-extended) or =label (data address)
	MOVHI // MOVHI rd, #imm16: rd = (rd & 0xFFFF) | imm<<16
	ADD   // ADD rd, rs1, rs2
	ADDI  // ADDI rd, rs1, #imm
	SUB   // SUB rd, rs1, rs2
	SUBI  // SUBI rd, rs1, #imm
	AND   // AND rd, rs1, rs2
	ANDI  // ANDI rd, rs1, #imm
	ORR   // ORR rd, rs1, rs2
	EOR   // EOR rd, rs1, rs2
	MVN   // MVN rd, rs
	LSL   // LSL rd, rs1, rs2
	LSLI  // LSLI rd, rs1, #imm
	LSR   // LSR rd, rs1, rs2
	LSRI  // LSRI rd, rs1, #imm
	MUL   // MUL rd, rs1, rs2 (integer, single cycle)
	CMP   // CMP rs1, rs2 (sets flags)
	CMPI  // CMPI rs1, #imm
	B     // B label
	BEQ   // branch if equal
	BNE   // branch if not equal
	BLT   // branch if signed less
	BGE   // branch if signed greater-or-equal
	BGT   // branch if signed greater
	BLE   // branch if signed less-or-equal
	BLO   // branch if unsigned lower
	BHS   // branch if unsigned higher-or-same
	BL    // call: LR = PC+1, jump
	RET   // return: PC = LR
	LDR   // LDR rd, [rs1, #imm] (word)
	LDRR  // LDRR rd, [rs1, rs2] (word, register offset)
	LDRB  // LDRB rd, [rs1, #imm] (byte, zero-extended)
	LDRBR // LDRBR rd, [rs1, rs2]
	STR   // STR rs2, [rs1, #imm]
	STRR  // STRR rs2, [rs1, rs3]
	STRB  // STRB rs2, [rs1, #imm]
	STRBR // STRBR rs2, [rs1, rs3]
)

// GF opcodes (Table 1). All operate on the GF arithmetic unit.
const (
	GFCONF   Op = 0x40 + iota // GFCONF rs: load field configuration from [rs]
	GFMUL                     // gfMult_simd  rd, rs1, rs2
	GFMULINV                  // gfMultInv_simd rd, rs
	GFSQ                      // gfSq_simd rd, rs
	GFPOW                     // gfPower_simd rd, rs1, rs2
	GFADD                     // gfAdd_simd rd, rs1, rs2
	GF32MUL                   // gf32bMult rdh, rdl, rs1, rs2
)

// NumRegs is the architectural register-file size (16 entries, 32-bit).
const NumRegs = 16

// Register aliases.
const (
	SP = 13 // conventional stack pointer
	LR = 14 // link register for BL/RET
)

// Inst is a decoded instruction. Rd2 is the second destination of GF32MUL
// (the low product word). Imm doubles as the branch target (instruction
// index) after assembly.
type Inst struct {
	Op  Op
	Rd  uint8
	Rd2 uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
	Sym string // unresolved label, assembler-internal
}

// IsGF reports whether the instruction executes on the GF arithmetic unit.
func (i Inst) IsGF() bool { return i.Op >= GFCONF && i.Op <= GF32MUL }

// IsBranch reports whether the instruction may redirect control flow.
func (i Inst) IsBranch() bool { return (i.Op >= B && i.Op <= RET) || i.Op == HALT }

// opNames maps opcodes to assembly mnemonics.
var opNames = map[Op]string{
	NOP: "nop", HALT: "halt", MOV: "mov", MOVI: "movi", MOVHI: "movhi",
	ADD: "add", ADDI: "addi", SUB: "sub", SUBI: "subi",
	AND: "and", ANDI: "andi", ORR: "orr", EOR: "eor", MVN: "mvn",
	LSL: "lsl", LSLI: "lsli", LSR: "lsr", LSRI: "lsri", MUL: "mul",
	CMP: "cmp", CMPI: "cmpi",
	B: "b", BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BGT: "bgt",
	BLE: "ble", BLO: "blo", BHS: "bhs", BL: "bl", RET: "ret",
	LDR: "ldr", LDRR: "ldrr", LDRB: "ldrb", LDRBR: "ldrbr",
	STR: "str", STRR: "strr", STRB: "strb", STRBR: "strbr",
	GFCONF: "gfconf", GFMUL: "gfmul", GFMULINV: "gfmulinv", GFSQ: "gfsq",
	GFPOW: "gfpow", GFADD: "gfadd", GF32MUL: "gf32mul",
}

var nameOps = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// String renders the instruction in assembly syntax.
func (i Inst) String() string {
	n := opNames[i.Op]
	switch i.Op {
	case NOP, HALT, RET:
		return n
	case MOV, MVN:
		return fmt.Sprintf("%s r%d, r%d", n, i.Rd, i.Rs1)
	case MOVI, MOVHI:
		return fmt.Sprintf("%s r%d, #%d", n, i.Rd, i.Imm)
	case ADD, SUB, AND, ORR, EOR, LSL, LSR, MUL, GFMUL, GFPOW, GFADD:
		return fmt.Sprintf("%s r%d, r%d, r%d", n, i.Rd, i.Rs1, i.Rs2)
	case ADDI, SUBI, ANDI, LSLI, LSRI:
		return fmt.Sprintf("%s r%d, r%d, #%d", n, i.Rd, i.Rs1, i.Imm)
	case CMP:
		return fmt.Sprintf("%s r%d, r%d", n, i.Rs1, i.Rs2)
	case CMPI:
		return fmt.Sprintf("%s r%d, #%d", n, i.Rs1, i.Imm)
	case B, BEQ, BNE, BLT, BGE, BGT, BLE, BLO, BHS, BL:
		if i.Sym != "" {
			return fmt.Sprintf("%s %s", n, i.Sym)
		}
		return fmt.Sprintf("%s %d", n, i.Imm)
	case LDR, LDRB:
		return fmt.Sprintf("%s r%d, [r%d, #%d]", n, i.Rd, i.Rs1, i.Imm)
	case LDRR, LDRBR:
		return fmt.Sprintf("%s r%d, [r%d, r%d]", n, i.Rd, i.Rs1, i.Rs2)
	case STR, STRB:
		return fmt.Sprintf("%s r%d, [r%d, #%d]", n, i.Rs2, i.Rs1, i.Imm)
	case STRR, STRBR:
		return fmt.Sprintf("%s r%d, [r%d, r%d]", n, i.Rs2, i.Rs1, i.Rd2)
	case GFCONF:
		return fmt.Sprintf("%s r%d", n, i.Rs1)
	case GFMULINV, GFSQ:
		return fmt.Sprintf("%s r%d, r%d", n, i.Rd, i.Rs1)
	case GF32MUL:
		return fmt.Sprintf("%s r%d, r%d, r%d, r%d", n, i.Rd, i.Rd2, i.Rs1, i.Rs2)
	default:
		return fmt.Sprintf("op%d", i.Op)
	}
}

// EncodeGF packs a GF instruction into the paper's 26-bit format:
// bits 25..16 opcode, bits 15..0 register field (four 4-bit selectors:
// rd, rd2, rs1, rs2). It returns an error for non-GF instructions.
func EncodeGF(i Inst) (uint32, error) {
	if !i.IsGF() {
		return 0, fmt.Errorf("isa: %v is not a GF instruction", i.Op)
	}
	w := uint32(i.Op) << 16
	w |= uint32(i.Rd&0xF) << 12
	w |= uint32(i.Rd2&0xF) << 8
	w |= uint32(i.Rs1&0xF) << 4
	w |= uint32(i.Rs2 & 0xF)
	return w, nil
}

// DecodeGF unpacks a 26-bit GF instruction word.
func DecodeGF(w uint32) (Inst, error) {
	op := Op(w >> 16 & 0x3FF)
	if op < GFCONF || op > GF32MUL {
		return Inst{}, fmt.Errorf("isa: bad GF opcode %#x", uint32(op))
	}
	return Inst{
		Op:  op,
		Rd:  uint8(w >> 12 & 0xF),
		Rd2: uint8(w >> 8 & 0xF),
		Rs1: uint8(w >> 4 & 0xF),
		Rs2: uint8(w & 0xF),
	}, nil
}
