package isa

import (
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTripAllFormats(t *testing.T) {
	src := `
	start:
		nop
		movi r1, #100
		movi r2, #-5
		movhi r3, #0xABCD
		mov r4, r1
		mvn r5, r4
		add r6, r1, r2
		addi r7, r6, #-12
		sub r8, r7, r1
		subi r9, r8, #3
		and r10, r9, r1
		andi r11, r10, #0xFF
		orr r12, r11, r1
		eor r1, r12, r2
		lsl r2, r1, r3
		lsli r3, r2, #5
		lsr r4, r3, r1
		lsri r5, r4, #2
		mul r6, r5, r1
		cmp r6, r1
		cmpi r6, #7
		beq start
		bne start
		blt start
		bge start
		bgt start
		ble start
		blo start
		bhs start
		bl start
		b start
		ret
		ldr r1, [r2, #8]
		ldr r1, [r2, r3]
		ldrb r4, [r5, #1]
		ldrb r4, [r5, r6]
		str r1, [r2, #4]
		str r1, [r2, r3]
		strb r4, [r5, #0]
		strb r4, [r5, r6]
		gfconf r1
		gfmul r2, r3, r4
		gfmulinv r5, r6
		gfsq r7, r8
		gfpow r9, r10, r11
		gfadd r12, r1, r2
		gf32mul r3, r4, r5, r6
		halt
	`
	p := MustAssemble(src)
	for idx, in := range p.Insts {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("inst %d (%v): %v", idx, in, err)
		}
		back, err := Decode(w)
		if err != nil {
			t.Fatalf("inst %d: decode: %v", idx, err)
		}
		// Symbols are not preserved in the binary image.
		want := in
		want.Sym = ""
		if back != want {
			t.Fatalf("inst %d: %+v -> %#x -> %+v", idx, want, w, back)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	if _, err := Encode(Inst{Op: ADDI, Imm: 1 << 14}); err == nil {
		t.Error("oversized I-type immediate accepted")
	}
	if _, err := Encode(Inst{Op: MOVI, Imm: 1 << 17}); err == nil {
		t.Error("oversized M-type immediate accepted")
	}
	if _, err := Encode(Inst{Op: ADD, Sym: "unresolved"}); err == nil {
		t.Error("unresolved symbol encoded on non-branch")
	}
	if _, err := Decode(45 << 26); err == nil { // opcode 45 is unassigned
		t.Error("garbage word decoded")
	}
}

func TestProgramImageRoundTrip(t *testing.T) {
	src := `
		movi r1, =buf
		ldr r2, [r1, #0]
		gfconf r1
		gfmul r3, r2, r2
	done:
		halt
	.data
	buf: .word 0x11D, 42
	`
	p := MustAssemble(src)
	img, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Program
	if err := q.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	if len(q.Insts) != len(p.Insts) || len(q.Data) != len(p.Data) {
		t.Fatal("image shape mismatch")
	}
	for i := range p.Insts {
		want := p.Insts[i]
		want.Sym = ""
		if q.Insts[i] != want {
			t.Fatalf("inst %d mismatch: %+v vs %+v", i, q.Insts[i], want)
		}
	}
	for i := range p.Data {
		if q.Data[i] != p.Data[i] {
			t.Fatal("data mismatch")
		}
	}
	// Corrupt images are rejected.
	if err := new(Program).UnmarshalBinary(img[:8]); err == nil {
		t.Error("truncated image accepted")
	}
	img[0] = 'X'
	if err := new(Program).UnmarshalBinary(img); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestDisassemble(t *testing.T) {
	p := MustAssemble(`
	loop:
		addi r1, r1, #1
		b loop
	.data
		.word 7
	`)
	txt := Disassemble(p)
	if !strings.Contains(txt, "loop:") {
		t.Errorf("labels missing:\n%s", txt)
	}
	if !strings.Contains(txt, "addi r1, r1, #1") {
		t.Errorf("instruction missing:\n%s", txt)
	}
	if !strings.Contains(txt, ".data") {
		t.Errorf("data note missing:\n%s", txt)
	}
}

func TestEncodedProgramRunsIdentically(t *testing.T) {
	// A program that survives the binary round trip must execute the same.
	// (The processor is in package core; here we just confirm structural
	// identity, which core's determinism makes sufficient.)
	src := `
		movi r1, #5
		movi r2, #0
	loop:
		add r2, r2, r1
		subi r1, r1, #1
		cmpi r1, #0
		bgt loop
		halt
	`
	p := MustAssemble(src)
	img, _ := p.MarshalBinary()
	var q Program
	if err := q.UnmarshalBinary(img); err != nil {
		t.Fatal(err)
	}
	for i := range p.Insts {
		want := p.Insts[i]
		want.Sym = ""
		if q.Insts[i] != want {
			t.Fatal("binary round trip changed the program")
		}
	}
}
