package adaptive

import "repro/internal/obs"

// RegisterMetrics registers the controller's live rate-ladder position
// with reg under the gfp_adaptive_* names. Call once per controller per
// registry.
func (c *Controller) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("gfp_adaptive_rung",
		"Current rate-ladder rung index (0 = weakest code, highest rate).",
		func() float64 { return float64(c.CurrentRung()) })
	reg.GaugeFunc("gfp_adaptive_code_rate",
		"Code rate of the current rung (message bytes / channel bytes).",
		func() float64 {
			r := c.ladder.Rung(c.CurrentRung())
			return float64(r.IV.FrameK()) / float64(r.IV.FrameN())
		})
	reg.GaugeFunc("gfp_adaptive_epoch",
		"Current configuration epoch id.",
		func() float64 { return float64(c.CurrentEpoch()) })
	reg.CounterFunc("gfp_adaptive_transitions_total",
		"Rung switches taken by the controller.",
		func() int64 { return int64(c.TransitionCount()) })
	reg.CounterFunc("gfp_adaptive_frames_observed_total",
		"Decode-feedback frames the controller has seen.",
		func() int64 { return int64(c.Observed()) })
}

// RegisterMetrics registers the driver's running link totals with reg.
// The goodput gauge is delivered payload bytes per channel byte across
// the whole run so far — the link's epoch-weighted efficiency.
func (d *Driver) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("gfp_adaptive_frames_delivered_total",
		"Frames delivered through the adaptive link.", d.delivered.Load)
	reg.CounterFunc("gfp_adaptive_frames_failed_total",
		"Frames whose decode failed (residual losses).", d.failed.Load)
	reg.CounterFunc("gfp_adaptive_payload_bytes_total",
		"Message bytes of successfully decoded frames.", d.payloadBytes.Load)
	reg.CounterFunc("gfp_adaptive_channel_bytes_total",
		"Coded bytes the link put on the wire.", d.channelBytes.Load)
	reg.GaugeFunc("gfp_adaptive_goodput",
		"Delivered payload bytes per channel byte, run to date.",
		func() float64 {
			ch := d.channelBytes.Load()
			if ch == 0 {
				return 0
			}
			return float64(d.payloadBytes.Load()) / float64(ch)
		})
}
