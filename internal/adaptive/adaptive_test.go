package adaptive

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/channel"
	"repro/internal/gf"
	"repro/internal/pipeline"
)

func testLadder(t *testing.T) *Ladder {
	t.Helper()
	l, err := NewLadder(gf.MustDefault(8), 255, []int{251, 239, 223, 191, 127}, 4)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLadderValidation(t *testing.T) {
	f := gf.MustDefault(8)
	if _, err := NewLadder(f, 255, []int{239}, 1); err == nil {
		t.Error("single-rung ladder accepted")
	}
	if _, err := NewLadder(f, 255, []int{223, 239}, 1); err == nil {
		t.Error("increasing ks accepted")
	}
	if _, err := NewLadder(f, 255, []int{239, 238}, 1); err == nil {
		t.Error("odd n-k accepted")
	}
	l, err := NewLadder(f, 255, []int{251, 127}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 || l.Rung(1).Code.T != 64 || l.Depth() != 2 {
		t.Errorf("ladder %s misbuilt", l)
	}
}

func TestControllerStepDownOnFailure(t *testing.T) {
	ctrl, err := NewController(testLadder(t), 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Observe(Feedback{Seq: 0, Epoch: 0, Failed: true})
	if got := ctrl.CurrentEpoch(); got != 1 {
		t.Fatalf("epoch %d after failure, want 1", got)
	}
	if got := ctrl.RungIndexFor(1); got != 1 {
		t.Fatalf("rung %d after failure, want 1", got)
	}
	tr := ctrl.Transitions()
	if len(tr) != 1 || tr[0].Reason != "failure" || tr[0].From != 0 || tr[0].To != 1 {
		t.Fatalf("transitions %v", tr)
	}
}

func TestControllerStepDownOnMargin(t *testing.T) {
	ctrl, err := NewController(testLadder(t), 1, Config{}) // t=8, down at ceil(0.75*8)=6
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Observe(Feedback{Seq: 0, Epoch: 0, CorrectedMax: 5})
	if ctrl.CurrentEpoch() != 0 {
		t.Fatal("stepped down below the margin threshold")
	}
	ctrl.Observe(Feedback{Seq: 1, Epoch: 0, CorrectedMax: 6})
	if ctrl.CurrentEpoch() != 1 || ctrl.RungIndexFor(1) != 2 {
		t.Fatal("did not step down at the margin threshold")
	}
}

func TestControllerBottomRungHolds(t *testing.T) {
	l := testLadder(t)
	ctrl, err := NewController(l, l.Len()-1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ctrl.Observe(Feedback{Seq: uint64(i), Epoch: 0, Failed: true})
	}
	if len(ctrl.Transitions()) != 0 {
		t.Error("stepped below the strongest rung")
	}
}

// TestControllerHysteresis: relaxing requires StepUpAfter consecutive
// frames that would also be comfortable under the next weaker code, and
// any non-clean frame resets the streak.
func TestControllerHysteresis(t *testing.T) {
	ctrl, err := NewController(testLadder(t), 2, Config{StepUpAfter: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Next weaker rung has t=8: clean means <= floor(0.25*8) = 2.
	seq := uint64(0)
	obs := func(max int) {
		ctrl.Observe(Feedback{Seq: seq, Epoch: ctrl.CurrentEpoch(), CorrectedMax: max})
		seq++
	}
	for i := 0; i < 4; i++ {
		obs(1)
	}
	obs(3) // not clean for the target code: streak resets
	for i := 0; i < 4; i++ {
		obs(2)
	}
	if len(ctrl.Transitions()) != 0 {
		t.Fatal("stepped up before a full clean streak")
	}
	obs(0) // 5th consecutive clean frame
	tr := ctrl.Transitions()
	if len(tr) != 1 || tr[0].Reason != "clean-streak" || tr[0].To != 1 {
		t.Fatalf("transitions %v, want one clean-streak step to rung 1", tr)
	}
}

// TestControllerIgnoresStaleEpochs: feedback from frames encoded under
// an epoch the controller already left must not drive decisions —
// otherwise one bad burst would cascade the controller all the way down
// while its in-flight frames drain.
func TestControllerIgnoresStaleEpochs(t *testing.T) {
	ctrl, err := NewController(testLadder(t), 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Observe(Feedback{Seq: 0, Epoch: 0, Failed: true}) // -> epoch 1
	for i := 1; i < 20; i++ {
		ctrl.Observe(Feedback{Seq: uint64(i), Epoch: 0, Failed: true}) // stale
	}
	if got := ctrl.RungIndexFor(ctrl.CurrentEpoch()); got != 1 {
		t.Fatalf("stale failures walked the ladder to rung %d", got)
	}
}

func TestControllerValidation(t *testing.T) {
	l := testLadder(t)
	if _, err := NewController(l, -1, Config{}); err == nil {
		t.Error("negative start rung accepted")
	}
	if _, err := NewController(l, l.Len(), Config{}); err == nil {
		t.Error("out-of-range start rung accepted")
	}
	ctrl, _ := NewController(l, 0, Config{})
	if _, err := ctrl.RungFor(3); err == nil {
		t.Error("unknown epoch accepted")
	}
}

// closedLoop runs the full adaptive link over a drifting bursty channel
// and returns the transitions and epoch stats.
func closedLoop(t *testing.T, workers, queue, window int, seed int64) ([]Transition, []EpochStats) {
	t.Helper()
	tv, err := channel.NewTimeVarying([]channel.Episode{
		{Frames: 60, StartEbN0: 8, EndEbN0: 8},
		{Frames: 120, StartEbN0: 8, EndEbN0: 4, Burst: true},
		{Frames: 120, StartEbN0: 4, EndEbN0: 8},
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := NewLadder(gf.MustDefault(8), 255, []int{251, 239, 223, 191, 127}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ladder, 0, Config{StepUpAfter: 16})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncodeStage(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecodeStage(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	corrupt, err := pipeline.NewCorruptTV(tv, 8)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := pipeline.New(pipeline.Config{Workers: workers, Queue: queue}, enc, corrupt, dec)
	if err != nil {
		t.Fatal(err)
	}
	pending := map[uint64][]byte{}
	drv := &Driver{
		Ctrl:   ctrl,
		Window: window,
		Payload: func(seq uint64, size int) []byte {
			rng := rand.New(rand.NewSource(seed + int64(seq)))
			b := make([]byte, size)
			rng.Read(b)
			pending[seq] = b
			return b
		},
		OnFrame: func(f *pipeline.Frame) {
			want := pending[f.Seq]
			delete(pending, f.Seq)
			if f.Err == nil && !bytes.Equal(f.Data, want) {
				t.Errorf("frame %d delivered wrong bytes", f.Seq)
			}
		},
	}
	epochs, err := drv.Run(pl, tv.TotalFrames())
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Errorf("%d frames never delivered", len(pending))
	}
	return ctrl.Transitions(), epochs
}

// TestClosedLoopAdaptsAndRecovers: over a degrade-then-recover schedule
// the controller must step down the ladder during the degraded episode
// and relax back afterwards.
func TestClosedLoopAdaptsAndRecovers(t *testing.T) {
	transitions, epochs := closedLoop(t, 2, 8, 8, 11)
	var downs, ups int
	for _, tr := range transitions {
		if tr.To > tr.From {
			downs++
		} else {
			ups++
		}
	}
	if downs == 0 || ups == 0 {
		t.Fatalf("trajectory %v: want both down and up transitions", transitions)
	}
	total := 0
	for _, e := range epochs {
		total += e.Frames
	}
	if total != 300 {
		t.Errorf("epoch stats cover %d frames, want 300", total)
	}
	for _, e := range epochs {
		if e.Frames > 0 && e.Goodput() > float64(ladderRateUpper(t)) {
			t.Errorf("epoch %d goodput %v exceeds max code rate", e.Epoch, e.Goodput())
		}
	}
}

func ladderRateUpper(t *testing.T) float64 {
	t.Helper()
	return 251.0 / 255.0
}

// TestClosedLoopDeterminism: same seed + same schedule + same window
// must yield the identical rate trajectory and epoch stats — regardless
// of worker count, since corruption is keyed on Frame.Seq and feedback
// is consumed in delivery order. Run under -race in CI.
func TestClosedLoopDeterminism(t *testing.T) {
	tr1, ep1 := closedLoop(t, 1, 8, 8, 11)
	tr2, ep2 := closedLoop(t, 4, 8, 8, 11)
	tr3, ep3 := closedLoop(t, 2, 8, 8, 11)
	if !reflect.DeepEqual(tr1, tr2) || !reflect.DeepEqual(tr1, tr3) {
		t.Fatalf("trajectories diverged across worker counts:\n1: %v\n4: %v\n2: %v", tr1, tr2, tr3)
	}
	if !reflect.DeepEqual(ep1, ep2) || !reflect.DeepEqual(ep1, ep3) {
		t.Fatalf("epoch stats diverged across worker counts:\n1: %+v\n4: %+v\n2: %+v", ep1, ep2, ep3)
	}
	if len(tr1) == 0 {
		t.Fatal("determinism test exercised no transitions")
	}
}

// TestDriverWindowClamp: a window larger than the pipeline queue is
// clamped (the no-deadlock bound) and the run still completes.
func TestDriverWindowClamp(t *testing.T) {
	transitions, _ := closedLoop(t, 1, 4, 1000, 11)
	if len(transitions) == 0 {
		t.Error("clamped-window run produced no transitions")
	}
}
