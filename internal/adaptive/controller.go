package adaptive

import (
	"fmt"
	"math"
	"sync"
)

// Config tunes the controller's switching policy. The zero value picks
// the defaults noted on each field.
type Config struct {
	// StepDownFrac: step down to a stronger code when a frame's worst
	// codeword needed >= ceil(StepDownFrac * t) corrections (or failed
	// outright). Default 0.75.
	StepDownFrac float64
	// StepUpFrac: a frame counts toward the clean streak only when its
	// worst codeword needed <= floor(StepUpFrac * t') corrections, where
	// t' is the bound of the next *weaker* rung — the streak predicts
	// the frame would also have been comfortable after relaxing, which
	// keeps the controller from bouncing off a rung it can't hold.
	// Default 0.25.
	StepUpFrac float64
	// StepUpAfter: consecutive clean frames (under the current code)
	// required before relaxing to a weaker code — the hysteresis that
	// keeps the controller from oscillating at an episode boundary.
	// Default 48.
	StepUpAfter int
}

func (c Config) withDefaults() Config {
	if c.StepDownFrac <= 0 {
		c.StepDownFrac = 0.75
	}
	if c.StepUpFrac <= 0 {
		c.StepUpFrac = 0.25
	}
	if c.StepUpAfter <= 0 {
		c.StepUpAfter = 48
	}
	return c
}

// Feedback is one frame's decode outcome, fed to Observe in delivery
// (Seq) order.
type Feedback struct {
	Seq   uint64
	Epoch int
	// Failed marks an uncorrectable frame (decode error).
	Failed bool
	// CorrectedMax is the worst per-codeword correction count
	// (pipeline.Frame.CorrectedMax).
	CorrectedMax int
}

// Transition records one rung switch.
type Transition struct {
	// Seq is the frame whose feedback triggered the switch; Epoch is the
	// newly opened epoch.
	Seq    uint64
	Epoch  int
	From   int
	To     int
	Reason string // "failure", "margin" or "clean-streak"
}

// String formats the transition for reports.
func (t Transition) String() string {
	dir := "down"
	if t.To < t.From {
		dir = "up"
	}
	return fmt.Sprintf("seq %d: rung %d -> %d (%s, %s) epoch %d", t.Seq, t.From, t.To, dir, t.Reason, t.Epoch)
}

// Controller walks the rate ladder from decode feedback. Observe and
// CurrentEpoch belong to the single control-loop goroutine (the Driver);
// RungFor is read concurrently by encode/decode stage workers.
//
// Policy: fast attack, slow release. Degradation — a decode failure or a
// worst-codeword correction count at >= StepDownFrac of the bound t —
// steps to the next stronger code immediately. Relaxing back requires
// StepUpAfter consecutive comfortable frames. Only feedback from frames
// encoded under the *current* epoch drives decisions: in-flight frames
// of an older epoch judge the code the controller already left.
type Controller struct {
	ladder *Ladder
	cfg    Config

	mu          sync.RWMutex
	epochRung   []int // epoch id -> rung index (append-only)
	rung        int
	epoch       int
	cleanStreak int
	transitions []Transition
	observed    uint64 // frames observed, total
}

// NewController starts a controller at the given initial rung.
func NewController(l *Ladder, startRung int, cfg Config) (*Controller, error) {
	if startRung < 0 || startRung >= l.Len() {
		return nil, fmt.Errorf("adaptive: start rung %d outside ladder [0,%d)", startRung, l.Len())
	}
	return &Controller{
		ladder:    l,
		cfg:       cfg.withDefaults(),
		epochRung: []int{startRung},
		rung:      startRung,
	}, nil
}

// Ladder returns the controller's ladder.
func (c *Controller) Ladder() *Ladder { return c.ladder }

// CurrentEpoch returns the epoch new frames should be tagged with.
func (c *Controller) CurrentEpoch() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// RungIndexFor returns the rung index epoch e used, or -1 when e was
// never opened.
func (c *Controller) RungIndexFor(e int) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if e < 0 || e >= len(c.epochRung) {
		return -1
	}
	return c.epochRung[e]
}

// RungFor returns the code rung of epoch e — the lookup the epoch-
// switchable stage pair performs per frame. Safe for concurrent use.
func (c *Controller) RungFor(e int) (Rung, error) {
	i := c.RungIndexFor(e)
	if i < 0 {
		return Rung{}, fmt.Errorf("adaptive: unknown epoch %d", e)
	}
	return c.ladder.Rung(i), nil
}

// Transitions returns the rung switches so far, in order.
func (c *Controller) Transitions() []Transition {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Transition(nil), c.transitions...)
}

// CurrentRung returns the rung index new frames encode under. Safe for
// concurrent use (metrics and reporters poll it while the loop runs).
func (c *Controller) CurrentRung() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rung
}

// TransitionCount returns how many rung switches have happened.
func (c *Controller) TransitionCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.transitions)
}

// Observed returns the total frames of feedback seen, current epoch or
// not.
func (c *Controller) Observed() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.observed
}

// downAt returns the worst-codeword correction count that triggers a
// step down under a code correcting t errors.
func (c *Controller) downAt(t int) int {
	at := int(math.Ceil(c.cfg.StepDownFrac * float64(t)))
	if at < 1 {
		at = 1
	}
	return at
}

// upBelow returns the largest worst-codeword correction count that still
// counts as a comfortable frame under a code correcting t errors.
func (c *Controller) upBelow(t int) int {
	return int(math.Floor(c.cfg.StepUpFrac * float64(t)))
}

// Observe feeds one frame's decode outcome to the policy. Callers must
// deliver feedback in Seq order from a single goroutine.
func (c *Controller) Observe(fb Feedback) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observed++
	if fb.Epoch != c.epoch {
		// An in-flight frame from an epoch the controller already left:
		// it judges an old code, not the current one.
		return
	}
	t := c.ladder.Rung(c.rung).Code.T
	switch {
	case fb.Failed || fb.CorrectedMax >= c.downAt(t):
		c.cleanStreak = 0
		if c.rung < c.ladder.Len()-1 {
			reason := "margin"
			if fb.Failed {
				reason = "failure"
			}
			c.switchTo(c.rung+1, fb.Seq, reason)
		}
	case c.rung > 0 && fb.CorrectedMax <= c.upBelow(c.ladder.Rung(c.rung-1).Code.T):
		c.cleanStreak++
		if c.cleanStreak >= c.cfg.StepUpAfter {
			c.cleanStreak = 0
			c.switchTo(c.rung-1, fb.Seq, "clean-streak")
		}
	default:
		c.cleanStreak = 0
	}
}

// switchTo opens a new epoch on the given rung. Caller holds mu.
func (c *Controller) switchTo(rung int, seq uint64, reason string) {
	from := c.rung
	c.rung = rung
	c.epoch++
	c.epochRung = append(c.epochRung, rung)
	c.transitions = append(c.transitions, Transition{
		Seq: seq, Epoch: c.epoch, From: from, To: rung, Reason: reason,
	})
}
