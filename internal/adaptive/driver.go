package adaptive

import (
	"fmt"
	"sync/atomic"

	"repro/internal/pipeline"
)

// EpochStats aggregates one epoch's outcomes for the link report.
type EpochStats struct {
	Epoch int
	Rung  int
	// FirstSeq/LastSeq bound the epoch's frames (inclusive).
	FirstSeq, LastSeq uint64
	Frames            int
	Failed            int
	Corrected         int
	// PayloadBytes counts message bytes of successfully decoded frames;
	// ChannelBytes counts the coded bytes all the epoch's frames put on
	// the wire. PayloadBytes/ChannelBytes is the epoch's goodput as a
	// fraction of channel capacity (code rate x delivery ratio).
	PayloadBytes, ChannelBytes int64
}

// Goodput returns delivered payload bytes per channel byte.
func (e EpochStats) Goodput() float64 {
	if e.ChannelBytes == 0 {
		return 0
	}
	return float64(e.PayloadBytes) / float64(e.ChannelBytes)
}

// FailureRate returns the epoch's residual frame-failure rate.
func (e EpochStats) FailureRate() float64 {
	if e.Frames == 0 {
		return 0
	}
	return float64(e.Failed) / float64(e.Frames)
}

// Driver runs the closed loop over a started pipeline: it submits frames
// tagged with the controller's current epoch (payload sized to that
// epoch's code), consumes decoded frames in delivery order, and feeds
// each outcome back to the controller.
//
// Submission never runs more than the window ahead of consumed feedback.
// That bounds the controller's reaction lag, and — because pipeline
// delivery order equals submission order — makes the rate trajectory a
// pure function of payloads, channel schedule and controller config,
// independent of worker count and goroutine scheduling. The window is
// clamped to the pipeline's queue depth, which also guarantees Submit
// can never block with undelivered frames stuck behind it (no deadlock).
type Driver struct {
	Ctrl *Controller
	// Window is the max frames in flight; <= 0 or > queue depth means
	// the pipeline's queue depth.
	Window int
	// Payload generates frame seq's message of exactly size bytes. It is
	// called once per frame, in Seq order, from the driver goroutine.
	Payload func(seq uint64, size int) []byte
	// OnFrame, when set, observes every delivered frame (in Seq order,
	// from the driver goroutine) after the controller has seen its
	// feedback — the hook for round-trip verification and reporting.
	OnFrame func(f *pipeline.Frame)

	// Running link totals, updated atomically by account so metrics can
	// read them while Run is live.
	delivered    atomic.Int64
	failed       atomic.Int64
	payloadBytes atomic.Int64
	channelBytes atomic.Int64
}

// Run pushes `frames` frames through the pipeline's closed loop and
// returns the per-epoch statistics, indexed by epoch id. The pipeline
// must consist of stages built around d.Ctrl (EncodeStage/DecodeStage
// plus any channel stage between them).
func (d *Driver) Run(pl *pipeline.Pipeline, frames int) ([]EpochStats, error) {
	if frames < 1 {
		return nil, fmt.Errorf("adaptive: need at least one frame")
	}
	if d.Ctrl == nil || d.Payload == nil {
		return nil, fmt.Errorf("adaptive: driver needs Ctrl and Payload")
	}
	window := d.Window
	if q := pl.Config().Queue; window <= 0 || window > q {
		window = q
	}

	run := pl.Start()
	var epochs []EpochStats
	submitted, consumed := 0, 0
	for consumed < frames {
		for submitted < frames && submitted-consumed < window {
			epoch := d.Ctrl.CurrentEpoch()
			rung, err := d.Ctrl.RungFor(epoch)
			if err != nil {
				return epochs, err
			}
			run.SubmitTagged(d.Payload(uint64(submitted), rung.IV.FrameK()), epoch)
			submitted++
			if submitted == frames {
				run.Close()
			}
		}
		f, ok := <-run.Out()
		if !ok {
			return epochs, fmt.Errorf("adaptive: pipeline closed after %d of %d frames", consumed, frames)
		}
		d.Ctrl.Observe(Feedback{
			Seq: f.Seq, Epoch: f.Epoch, Failed: f.Err != nil, CorrectedMax: f.CorrectedMax,
		})
		epochs = d.account(epochs, f)
		if d.OnFrame != nil {
			d.OnFrame(f)
		}
		consumed++
	}
	run.Wait()
	return epochs, nil
}

// account folds one delivered frame into its epoch's stats.
func (d *Driver) account(epochs []EpochStats, f *pipeline.Frame) []EpochStats {
	for len(epochs) <= f.Epoch {
		e := len(epochs)
		epochs = append(epochs, EpochStats{Epoch: e, Rung: d.Ctrl.RungIndexFor(e)})
	}
	st := &epochs[f.Epoch]
	if st.Frames == 0 || f.Seq < st.FirstSeq {
		st.FirstSeq = f.Seq
	}
	if f.Seq > st.LastSeq {
		st.LastSeq = f.Seq
	}
	st.Frames++
	st.Corrected += f.Corrected
	rung := d.Ctrl.Ladder().Rung(st.Rung)
	st.ChannelBytes += int64(rung.IV.FrameN())
	d.delivered.Add(1)
	d.channelBytes.Add(int64(rung.IV.FrameN()))
	if f.Err != nil {
		st.Failed++
		d.failed.Add(1)
	} else {
		st.PayloadBytes += int64(rung.IV.FrameK())
		d.payloadBytes.Add(int64(rung.IV.FrameK()))
	}
	return epochs
}
