package adaptive

import (
	"testing"

	"repro/internal/obs"
)

func TestControllerRegisterMetrics(t *testing.T) {
	ctrl, err := NewController(testLadder(t), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctrl.RegisterMetrics(reg)

	if v, ok := reg.Value("gfp_adaptive_rung"); !ok || v != 1 {
		t.Errorf("rung gauge = %g,%v, want 1", v, ok)
	}
	r := ctrl.Ladder().Rung(1)
	wantRate := float64(r.IV.FrameK()) / float64(r.IV.FrameN())
	if v, _ := reg.Value("gfp_adaptive_code_rate"); v != wantRate {
		t.Errorf("code rate gauge = %g, want %g", v, wantRate)
	}

	ctrl.Observe(Feedback{Seq: 0, Epoch: 0, Failed: true}) // step down -> rung 2
	if v, _ := reg.Value("gfp_adaptive_rung"); v != 2 {
		t.Errorf("rung gauge after failure = %g, want 2", v)
	}
	if v, _ := reg.Value("gfp_adaptive_epoch"); v != 1 {
		t.Errorf("epoch gauge = %g, want 1", v)
	}
	if v, _ := reg.Value("gfp_adaptive_transitions_total"); v != 1 {
		t.Errorf("transitions counter = %g, want 1", v)
	}
	if v, _ := reg.Value("gfp_adaptive_frames_observed_total"); v != 1 {
		t.Errorf("observed counter = %g, want 1", v)
	}
}

func TestDriverRegisterMetrics(t *testing.T) {
	ctrl, err := NewController(testLadder(t), 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d := &Driver{Ctrl: ctrl}
	reg := obs.NewRegistry()
	d.RegisterMetrics(reg)

	if v, ok := reg.Value("gfp_adaptive_goodput"); !ok || v != 0 {
		t.Errorf("goodput before traffic = %g,%v, want 0", v, ok)
	}
	// Fold two frames in directly: one delivered, one failed.
	rung := ctrl.Ladder().Rung(0)
	d.delivered.Add(2)
	d.failed.Add(1)
	d.channelBytes.Add(2 * int64(rung.IV.FrameN()))
	d.payloadBytes.Add(int64(rung.IV.FrameK()))

	if v, _ := reg.Value("gfp_adaptive_frames_delivered_total"); v != 2 {
		t.Errorf("delivered = %g, want 2", v)
	}
	if v, _ := reg.Value("gfp_adaptive_frames_failed_total"); v != 1 {
		t.Errorf("failed = %g, want 1", v)
	}
	want := float64(rung.IV.FrameK()) / float64(2*rung.IV.FrameN())
	if v, _ := reg.Value("gfp_adaptive_goodput"); v != want {
		t.Errorf("goodput = %g, want %g", v, want)
	}
}
