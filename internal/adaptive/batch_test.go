package adaptive

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/pipeline"
)

// TestEpochSwitchMidBatch: batched frames tagged with different epochs
// may be in flight together while the controller switches rungs; each
// frame (and every codeword inside it) must encode and decode under its
// own epoch's code, including frames submitted under the old epoch after
// the switch happened.
func TestEpochSwitchMidBatch(t *testing.T) {
	ladder, err := NewLadder(gf.MustDefault(8), 255, []int{239, 191}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ladder, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncodeStage(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecodeStage(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := pipeline.New(pipeline.Config{Workers: 2, Queue: 4, Batch: 3}, enc, dec)
	if err != nil {
		t.Fatal(err)
	}
	r := pl.Start()

	const batch = 3
	rng := rand.New(rand.NewSource(31))
	payload := func(epoch, units int) []byte {
		rung, err := ctrl.RungFor(epoch)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, units*rung.IV.FrameK())
		rng.Read(b)
		return b
	}

	epoch0 := ctrl.CurrentEpoch()
	p0 := payload(epoch0, batch)
	// Force a rung switch while nothing has drained yet.
	ctrl.Observe(Feedback{Seq: 0, Epoch: epoch0, Failed: true})
	epoch1 := ctrl.CurrentEpoch()
	if epoch1 == epoch0 {
		t.Fatal("controller did not switch epochs")
	}
	p1 := payload(epoch1, batch)
	// A straggler still batched under the old epoch, plus a partial batch
	// under the new one: both must resolve their own rung.
	p2 := payload(epoch0, batch)
	p3 := payload(epoch1, 1)

	go func() {
		r.SubmitTagged(p0, epoch0)
		r.SubmitTagged(p1, epoch1)
		r.SubmitTagged(p2, epoch0)
		r.SubmitTagged(p3, epoch1)
		r.Close()
	}()
	want := [][]byte{p0, p1, p2, p3}
	wantWidth := []int{batch * 2, batch * 2, batch * 2, 1 * 2} // ×interleave depth
	i := 0
	for f := range r.Out() {
		if f.Err != nil {
			t.Fatalf("frame %d (epoch %d) failed: %v", f.Seq, f.Epoch, f.Err)
		}
		if !bytes.Equal(f.Data, want[i]) {
			t.Errorf("frame %d decoded wrong bytes for its epoch", f.Seq)
		}
		if f.Width != wantWidth[i] {
			t.Errorf("frame %d Width = %d, want %d", f.Seq, f.Width, wantWidth[i])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("delivered %d frames, want %d", i, len(want))
	}
}
