package adaptive

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/pipeline"
)

// Epoch-switchable stage pair. Both stages resolve the frame's code from
// its Epoch tag through the shared controller, so an encode worker and a
// decode worker always agree on the code a given frame uses even while
// the controller switches rungs with frames in flight. Both stages are
// stateless per call and safe to share across the worker pool (the
// controller's epoch table is guarded internally, and codes are
// immutable after construction).

func bytesToElems(b []byte) []gf.Elem {
	out := make([]gf.Elem, len(b))
	for i, v := range b {
		out[i] = gf.Elem(v)
	}
	return out
}

func elemsToBytes(e []gf.Elem) []byte {
	out := make([]byte, len(e))
	for i, v := range e {
		out[i] = byte(v)
	}
	return out
}

// EncodeStage interleave-encodes each frame with its epoch's code. The
// payload must be the epoch rung's IV.FrameK() bytes.
type EncodeStage struct{ C *Controller }

// NewEncodeStage wraps the controller's ladder as the encode side.
func NewEncodeStage(c *Controller) (*EncodeStage, error) {
	if err := requireByteField(c); err != nil {
		return nil, err
	}
	return &EncodeStage{C: c}, nil
}

// Name implements pipeline.Stage.
func (s *EncodeStage) Name() string { return "adaptive-encode" }

// Process implements pipeline.Stage.
func (s *EncodeStage) Process(f *pipeline.Frame) error {
	rung, err := s.C.RungFor(f.Epoch)
	if err != nil {
		return err
	}
	out, err := rung.IV.Encode(bytesToElems(f.Data))
	if err != nil {
		return fmt.Errorf("adaptive: epoch %d %s: %w", f.Epoch, rung, err)
	}
	f.Data = elemsToBytes(out)
	return nil
}

// DecodeStage deinterleaves and decodes each frame with its epoch's
// code, recording total corrections in Frame.Corrected and the worst
// per-codeword count in Frame.CorrectedMax — the controller's feedback
// signal — even when the frame is uncorrectable.
type DecodeStage struct{ C *Controller }

// NewDecodeStage wraps the controller's ladder as the decode side.
func NewDecodeStage(c *Controller) (*DecodeStage, error) {
	if err := requireByteField(c); err != nil {
		return nil, err
	}
	return &DecodeStage{C: c}, nil
}

// Name implements pipeline.Stage.
func (s *DecodeStage) Name() string { return "adaptive-decode" }

// Process implements pipeline.Stage.
func (s *DecodeStage) Process(f *pipeline.Frame) error {
	rung, err := s.C.RungFor(f.Epoch)
	if err != nil {
		return err
	}
	msg, st, err := rung.IV.DecodeWithStats(bytesToElems(f.Data))
	if st != nil {
		f.Corrected += st.Total
		if st.Max > f.CorrectedMax {
			f.CorrectedMax = st.Max
		}
	}
	if err != nil {
		return fmt.Errorf("adaptive: epoch %d %s: %w", f.Epoch, rung, err)
	}
	f.Data = elemsToBytes(msg)
	return nil
}

func requireByteField(c *Controller) error {
	if f := c.ladder.Rung(0).Code.F; f.M() > 8 {
		return fmt.Errorf("adaptive: stages require a field with m <= 8, got %v", f)
	}
	return nil
}
