package adaptive

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/pipeline"
)

// Epoch-switchable stage pair. Both stages resolve the frame's code from
// its Epoch tag through the shared controller, so an encode worker and a
// decode worker always agree on the code a given frame uses even while
// the controller switches rungs with frames in flight. Both stages are
// stateless per call and safe to share across the worker pool (the
// controller's epoch table is guarded internally, and codes are
// immutable after construction).

func bytesToElems(b []byte) []gf.Elem {
	out := make([]gf.Elem, len(b))
	for i, v := range b {
		out[i] = gf.Elem(v)
	}
	return out
}

func elemsToBytes(e []gf.Elem) []byte {
	out := make([]byte, len(e))
	for i, v := range e {
		out[i] = byte(v)
	}
	return out
}

// EncodeStage interleave-encodes each frame with its epoch's code. The
// payload must be a positive multiple of the epoch rung's IV.FrameK()
// bytes; batched frames carry several interleaver frames, all encoded
// under the same epoch (a frame's epoch tags the whole batch).
type EncodeStage struct{ C *Controller }

// NewEncodeStage wraps the controller's ladder as the encode side.
func NewEncodeStage(c *Controller) (*EncodeStage, error) {
	if err := requireByteField(c); err != nil {
		return nil, err
	}
	return &EncodeStage{C: c}, nil
}

// Name implements pipeline.Stage.
func (s *EncodeStage) Name() string { return "adaptive-encode" }

// Process implements pipeline.Stage.
func (s *EncodeStage) Process(f *pipeline.Frame) error {
	rung, err := s.C.RungFor(f.Epoch)
	if err != nil {
		return err
	}
	fk := rung.IV.FrameK()
	if len(f.Data) == 0 || len(f.Data)%fk != 0 {
		return fmt.Errorf("adaptive: epoch %d %s: message length %d, want a positive multiple of %d",
			f.Epoch, rung, len(f.Data), fk)
	}
	w := len(f.Data) / fk
	out := make([]byte, 0, w*rung.IV.FrameN())
	for i := 0; i < w; i++ {
		cw, err := rung.IV.Encode(bytesToElems(f.Data[i*fk : (i+1)*fk]))
		if err != nil {
			return fmt.Errorf("adaptive: epoch %d %s: %w", f.Epoch, rung, err)
		}
		out = append(out, elemsToBytes(cw)...)
	}
	f.Data = out
	f.Width = w * rung.IV.Depth
	return nil
}

// DecodeStage deinterleaves and decodes each frame with its epoch's
// code, recording total corrections in Frame.Corrected and the worst
// per-codeword count in Frame.CorrectedMax — the controller's feedback
// signal — even when the frame is uncorrectable.
type DecodeStage struct{ C *Controller }

// NewDecodeStage wraps the controller's ladder as the decode side.
func NewDecodeStage(c *Controller) (*DecodeStage, error) {
	if err := requireByteField(c); err != nil {
		return nil, err
	}
	return &DecodeStage{C: c}, nil
}

// Name implements pipeline.Stage.
func (s *DecodeStage) Name() string { return "adaptive-decode" }

// Process implements pipeline.Stage.
func (s *DecodeStage) Process(f *pipeline.Frame) error {
	rung, err := s.C.RungFor(f.Epoch)
	if err != nil {
		return err
	}
	fn := rung.IV.FrameN()
	if len(f.Data) == 0 || len(f.Data)%fn != 0 {
		return fmt.Errorf("adaptive: epoch %d %s: received length %d, want a positive multiple of %d",
			f.Epoch, rung, len(f.Data), fn)
	}
	w := len(f.Data) / fn
	out := make([]byte, 0, w*rung.IV.FrameK())
	for i := 0; i < w; i++ {
		msg, st, err := rung.IV.DecodeWithStats(bytesToElems(f.Data[i*fn : (i+1)*fn]))
		if st != nil {
			f.Corrected += st.Total
			if st.Max > f.CorrectedMax {
				f.CorrectedMax = st.Max
			}
		}
		if err != nil {
			return fmt.Errorf("adaptive: epoch %d %s: %w", f.Epoch, rung, err)
		}
		out = append(out, elemsToBytes(msg)...)
	}
	f.Data = out
	f.Width = w * rung.IV.Depth
	return nil
}

func requireByteField(c *Controller) error {
	if f := c.ladder.Rung(0).Code.F; f.M() > 8 {
		return fmt.Errorf("adaptive: stages require a field with m <= 8, got %v", f)
	}
	return nil
}
