// Package adaptive implements a closed-loop link controller that adapts
// the Reed-Solomon code rate to channel conditions at runtime — the
// paper's Section 1.1 motivation for a *programmable* GF datapath: an
// IoT node should strengthen its error-correcting code when the channel
// degrades and relax it back (recovering goodput) when conditions clear,
// instead of shipping one fixed codec.
//
// The pieces:
//
//   - Ladder: an ordered family of RS(n,k) codes over one field, from
//     highest rate (weakest) to lowest rate (strongest).
//   - Controller: watches per-frame decode feedback — corrections
//     approaching the code's bound t, or outright failures — and walks
//     the ladder: stepping down (stronger) immediately on degradation,
//     stepping back up only after a long clean streak (hysteresis).
//     Every switch opens a new epoch.
//   - EncodeStage / DecodeStage: an epoch-switchable pipeline stage
//     pair. Frames carry the epoch they were submitted under
//     (pipeline.Frame.Epoch), and both stages look the epoch's code up
//     in the controller, so the pipeline switches codes coherently with
//     frames of different epochs in flight — no drain required.
//   - Driver: the closed loop itself. It submits frames tagged with the
//     controller's current epoch, consumes decoded frames in delivery
//     order, and feeds outcomes back. Submission runs at most a fixed
//     window ahead of feedback, which makes the whole rate trajectory a
//     pure function of (seed, schedule, config) — bit-identical across
//     runs regardless of worker scheduling.
package adaptive

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/rs"
)

// Rung is one operating point of the rate ladder.
type Rung struct {
	// Index is the rung's position: 0 is the highest-rate (weakest)
	// code; higher indices are stronger.
	Index int
	Code  *rs.Code
	IV    *rs.Interleaved
}

// String labels the rung for reports.
func (r Rung) String() string {
	return fmt.Sprintf("RS(%d,%d,t=%d)", r.Code.N, r.Code.K, r.Code.T)
}

// Ladder is an immutable ordered code family sharing one field, length n
// and interleaving depth; ks runs from highest rate to lowest.
type Ladder struct {
	rungs []Rung
	depth int
}

// NewLadder builds the ladder RS(n, ks[0]) .. RS(n, ks[last]) over f with
// the given interleaving depth. ks must be strictly decreasing (strictly
// increasing protection).
func NewLadder(f *gf.Field, n int, ks []int, depth int) (*Ladder, error) {
	if len(ks) < 2 {
		return nil, fmt.Errorf("adaptive: ladder needs >= 2 rungs, got %d", len(ks))
	}
	l := &Ladder{depth: depth}
	for i, k := range ks {
		if i > 0 && k >= ks[i-1] {
			return nil, fmt.Errorf("adaptive: ladder ks must strictly decrease, got %v", ks)
		}
		code, err := rs.New(f, n, k)
		if err != nil {
			return nil, fmt.Errorf("adaptive: rung %d: %w", i, err)
		}
		iv, err := rs.NewInterleaved(code, depth)
		if err != nil {
			return nil, fmt.Errorf("adaptive: rung %d: %w", i, err)
		}
		l.rungs = append(l.rungs, Rung{Index: i, Code: code, IV: iv})
	}
	return l, nil
}

// Len returns the number of rungs.
func (l *Ladder) Len() int { return len(l.rungs) }

// Depth returns the interleaving depth shared by all rungs.
func (l *Ladder) Depth() int { return l.depth }

// Rung returns rung i (0 = highest rate).
func (l *Ladder) Rung(i int) Rung { return l.rungs[i] }

// String lists the rungs for reports.
func (l *Ladder) String() string {
	s := ""
	for i, r := range l.rungs {
		if i > 0 {
			s += " | "
		}
		s += r.String()
	}
	return fmt.Sprintf("%s x%d", s, l.depth)
}
