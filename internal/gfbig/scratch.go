package gfbig

// Allocation-free To-variants: the wide-field mirror of the bulk
// treatment internal/gf got in PR 3. Each worker owns a Scratch holding
// every temporary a multiply / square / reduce / invert needs — the
// full-product accumulator, the Karatsuba arena, the comb window table
// and the 64-bit limb buffers — so a steady-state ECDSA sign or ECDH
// derive performs zero heap allocations per request. The strategy
// dispatch is the same four-way calibrated choice Mul uses
// (strategy.go), so forced kernel tiers steer the scratch path too.

import "math/bits"

// Scratch is per-worker working memory for the To-variants. It is not
// safe for concurrent use; give each worker its own via NewScratch.
type Scratch struct {
	f    *Field
	full []uint32 // 2*words+1: full product + comb shift guard word
	kar  []uint32 // karatsuba recursion arena
	comb [16][]uint32
	la   []uint64 // packed 64-bit limbs of a
	lb   []uint64 // packed 64-bit limbs of b
	acc  []uint64 // limb-product accumulator
	iva  Elem     // inversion: stable copy of the argument
	ivb  Elem     // inversion: beta accumulator
	ivt  Elem     // inversion: square-chain temporary
}

// NewScratch allocates working memory for this field's To-variants.
func (f *Field) NewScratch() *Scratch {
	w := f.words
	l := (w + 1) / 2
	s := &Scratch{
		f:    f,
		full: make([]uint32, 2*w+1),
		kar:  make([]uint32, karatsubaArenaSize(w, karatsubaLevels)),
		la:   make([]uint64, l),
		lb:   make([]uint64, l),
		acc:  make([]uint64, 2*l),
		iva:  make(Elem, w),
		ivb:  make(Elem, w),
		ivt:  make(Elem, w),
	}
	for i := range s.comb {
		s.comb[i] = make([]uint32, w+1)
	}
	return s
}

// Field returns the field this scratch was built for.
func (s *Scratch) Field() *Field { return s.f }

// AddTo sets dst = a + b (XOR). dst may alias either operand.
func (f *Field) AddTo(dst, a, b Elem) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

// MulTo sets dst = a*b reduced, allocation-free. dst may alias a or b;
// the product is accumulated in s and copied out last.
func (f *Field) MulTo(dst, a, b Elem, s *Scratch) {
	f.mulFullInto(f.MulStrategy(), a, b, s)
	f.reduceInPlace(s.full)
	copy(dst, s.full[:f.words])
}

// SquareTo sets dst = a^2 reduced, allocation-free. dst may alias a.
func (f *Field) SquareTo(dst, a Elem, s *Scratch) {
	for i, w := range a {
		lo, hi := spread32(w)
		s.full[2*i] = lo
		s.full[2*i+1] = hi
	}
	s.full[2*f.words] = 0
	f.reduceInPlace(s.full)
	copy(dst, s.full[:f.words])
}

// ReduceTo reduces a full (2*Words) product into dst without
// allocating. full is left unmodified.
func (f *Field) ReduceTo(dst Elem, full []uint32, s *Scratch) {
	copy(s.full, full)
	s.full[2*f.words] = 0
	f.reduceInPlace(s.full[:len(full)])
	copy(dst, s.full[:f.words])
}

// InvTo sets dst = a^-1 via the Itoh-Tsujii chain (the same chain as
// Inv), allocation-free. dst may alias a. It panics if a is zero.
func (f *Field) InvTo(dst, a Elem, s *Scratch) {
	if f.IsZero(a) {
		panic("gfbig: inverse of zero")
	}
	acp, beta, tmp := s.iva, s.ivb, s.ivt
	copy(acp, a)
	copy(beta, acp)
	e := f.m - 1
	hb := 63 - bits.LeadingZeros64(uint64(e))
	cur := 1
	for i := hb - 1; i >= 0; i-- {
		copy(tmp, beta)
		for k := 0; k < cur; k++ {
			f.SquareTo(tmp, tmp, s)
		}
		f.MulTo(beta, tmp, beta, s)
		cur *= 2
		if e>>i&1 == 1 {
			f.SquareTo(beta, beta, s)
			f.MulTo(beta, beta, acp, s)
			cur++
		}
	}
	f.SquareTo(dst, beta, s)
}

// mulFullInto computes the unreduced product of a and b into s.full
// (2*words + guard word, cleared first) with the given strategy.
func (f *Field) mulFullInto(st Strategy, a, b Elem, s *Scratch) {
	for i := range s.full {
		s.full[i] = 0
	}
	switch st {
	case StratKaratsuba:
		karatsubaArena(s.full, a, b, karatsubaLevels, s.kar)
	case StratComb:
		f.combInto(a, b, s)
	case StratCLMul:
		f.clmulInto(a, b, s)
	default:
		schoolbookInto(s.full, a, b)
	}
}

// reduceInPlace reduces r modulo the field polynomial in place; the
// normalized element ends in r[:words]. Same algorithm as Reduce.
func (f *Field) reduceInPlace(r []uint32) {
	for {
		top := Degree(r)
		if top < f.m {
			return
		}
		iw := top / WordBits
		lowBit := iw * WordBits
		if lowBit >= f.m {
			w := r[iw]
			r[iw] = 0
			base := lowBit - f.m
			for _, e := range f.exps {
				xorShifted(r, w, base+e)
			}
		} else {
			off := f.m - lowBit // 1..31
			wHigh := r[iw] >> off
			r[iw] ^= wHigh << off
			for _, e := range f.exps {
				xorShifted(r, wHigh, e)
			}
		}
	}
}

// karatsubaArenaSize returns the uint32 count karatsubaArena needs for
// n-word operands at the given recursion depth. Sibling recursions
// reuse the same sub-arena (they run sequentially), so only the widest
// child (hw = n - n/2 words) contributes.
func karatsubaArenaSize(n, levels int) int {
	if levels <= 0 || n < 2 {
		return 0
	}
	h := n / 2
	hw := n - h
	return 6*hw + 2*h + karatsubaArenaSize(hw, levels-1)
}

// karatsubaArena is karatsuba with all temporaries carved from arena
// instead of allocated: xors a*b into out (len(out) >= 2n).
func karatsubaArena(out []uint32, a, b []uint32, levels int, arena []uint32) {
	n := len(a)
	if levels <= 0 || n < 2 {
		schoolbookInto(out, a, b)
		return
	}
	h := n / 2
	hw := n - h
	a0, a1 := a[:h], a[h:]
	b0, b1 := b[:h], b[h:]
	as := arena[0:hw]
	bs := arena[hw : 2*hw]
	p0 := arena[2*hw : 2*hw+2*h]
	p2 := arena[2*hw+2*h : 2*hw+2*h+2*hw]
	p1 := arena[2*hw+2*h+2*hw : 2*hw+2*h+4*hw]
	rest := arena[6*hw+2*h:]
	copy(as, a1)
	copy(bs, b1)
	for i := 0; i < h; i++ {
		as[i] ^= a0[i]
		bs[i] ^= b0[i]
	}
	for i := range p0 {
		p0[i] = 0
	}
	for i := range p2 {
		p2[i] = 0
	}
	for i := range p1 {
		p1[i] = 0
	}
	karatsubaArena(p0, a0, b0, levels-1, rest)
	karatsubaArena(p2, a1, b1, levels-1, rest)
	karatsubaArena(p1, as, bs, levels-1, rest)
	for i, w := range p0 {
		out[i] ^= w
		out[i+h] ^= w
	}
	for i, w := range p1 {
		out[i+h] ^= w
	}
	for i, w := range p2 {
		out[i+h] ^= w
		out[i+2*h] ^= w
	}
}

// combInto is MulFullComb accumulating into s.full (pre-zeroed, with
// guard word) and building the window table in s.comb.
func (f *Field) combInto(a, b Elem, s *Scratch) {
	const w = 4 // window width in bits
	tab := &s.comb
	copy(tab[1], b)
	tab[1][f.words] = 0
	for u := 2; u < 16; u += 2 {
		var carry uint32
		for i, v := range tab[u/2] {
			tab[u][i] = v<<1 | carry
			carry = v >> 31
		}
		copy(tab[u+1], tab[u])
		for i := 0; i < f.words; i++ {
			tab[u+1][i] ^= b[i]
		}
	}
	r := s.full
	for k := WordBits/w - 1; k >= 0; k-- {
		for j := 0; j < f.words; j++ {
			u := a[j] >> (w * k) & 0xF
			if u != 0 {
				for i, v := range tab[u] {
					r[j+i] ^= v
				}
			}
		}
		if k > 0 {
			var carry uint32
			for i, v := range r {
				r[i] = v<<w | carry
				carry = v >> (WordBits - w)
			}
		}
	}
	r[2*f.words] = 0
}

// clmulInto is MulFullCLMul packing into s's limb buffers and unpacking
// into s.full (pre-zeroed).
func (f *Field) clmulInto(a, b Elem, s *Scratch) {
	pack64Into(s.la, a)
	pack64Into(s.lb, b)
	for i := range s.acc {
		s.acc[i] = 0
	}
	clmulAccumulate(s.acc, s.la, s.lb)
	for i := 0; i < 2*f.words; i++ {
		s.full[i] = uint32(s.acc[i/2] >> (32 * uint(i&1)))
	}
}

// pack64Into packs little-endian 32-bit words into the pre-sized limb
// buffer dst (len (len(a)+1)/2).
func pack64Into(dst []uint64, a Elem) {
	for i := 0; i < len(a)/2; i++ {
		dst[i] = uint64(a[2*i]) | uint64(a[2*i+1])<<32
	}
	if len(a)&1 == 1 {
		dst[len(dst)-1] = uint64(a[len(a)-1])
	}
}

// SetBytesInto parses big-endian bytes into the pre-allocated dst,
// with the same strict degree < m check as SetBytes.
func (f *Field) SetBytesInto(dst Elem, b []byte) error {
	for i := range dst {
		dst[i] = 0
	}
	if len(b)*8 > f.words*WordBits {
		for i := 0; i < len(b)-(f.words*WordBits+7)/8; i++ {
			if b[i] != 0 {
				return errValueTooWide
			}
		}
	}
	for i := 0; i < len(b); i++ {
		v := b[len(b)-1-i]
		if v == 0 {
			continue
		}
		if i/4 >= f.words {
			return errValueTooWide
		}
		dst[i/4] |= uint32(v) << (8 * (i % 4))
	}
	if Degree(dst) >= f.m {
		return errDegreeTooHigh
	}
	return nil
}

// BytesInto writes the big-endian fixed-length (ceil(m/8) bytes)
// encoding of a into dst, which must be exactly that long.
func (f *Field) BytesInto(dst []byte, a Elem) {
	n := (f.m + 7) / 8
	_ = dst[n-1]
	for i := 0; i < n; i++ {
		dst[n-1-i] = byte(a[i/4] >> (8 * (i % 4)))
	}
}
