package gfbig

// Full-product strategy registry for the wide-word fields — the gfbig
// mirror of the small-field kernel-tier registry in internal/gf. Every
// full multiplication is served by one of four interchangeable
// strategies; selection honors a forced kernel tier (GFP_KERNEL_TIER /
// gf.ForceKernelTier) and otherwise races all strategies once per
// operand width and caches the winner, exactly like the small-field
// one-shot calibration.

import (
	"sync"
	"time"

	"repro/internal/gf"
)

// Strategy identifies one full-product implementation.
type Strategy uint8

const (
	// StratSchoolbook is the definitional Words^2 32x32 path (MulFull).
	StratSchoolbook Strategy = iota
	// StratKaratsuba is the paper's two-level Karatsuba decomposition.
	StratKaratsuba
	// StratComb is the 4-bit windowed left-to-right comb (HMV Alg 2.36).
	StratComb
	// StratCLMul is the 64-bit carry-less limb path on gf.Clmul64.
	StratCLMul
	// NumStrategies is the number of registered strategies.
	NumStrategies
)

var strategyNames = [NumStrategies]string{"schoolbook", "karatsuba", "comb", "clmul"}

// String returns the strategy's registry name.
func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return "strategy(?)"
}

// StrategyNames returns the registry names of all full-product
// strategies in Strategy order.
func StrategyNames() []string { return append([]string(nil), strategyNames[:]...) }

// karatsubaLevels is the recursion depth used by the auto and scratch
// paths: two levels (8 words -> 4 -> 2 for GF(2^233)), matching the
// paper's decomposition.
const karatsubaLevels = 2

// stratWins caches the calibrated winner per element word count. Keyed
// by word count (not by field) because the full product never touches
// the reduction polynomial, so cost depends only on operand width.
var stratWins sync.Map // int -> Strategy

// MulStrategy resolves the full-product strategy Mul and the To-variants
// use for this field: a forced kernel tier pins the path (scalar ->
// schoolbook, table -> comb, packed/bitsliced -> karatsuba, clmul ->
// the limb path); in auto mode the calibrated per-width winner runs.
func (f *Field) MulStrategy() Strategy {
	switch gf.ForcedKernelTier() {
	case gf.TierScalar:
		return StratSchoolbook
	case gf.TierTable:
		return StratComb
	case gf.TierPacked, gf.TierBitsliced:
		return StratKaratsuba
	case gf.TierCLMul:
		return StratCLMul
	}
	return f.calibratedStrategy()
}

// calibratedStrategy returns (racing once per word count) the fastest
// full-product strategy for this operand width.
func (f *Field) calibratedStrategy() Strategy {
	if v, ok := stratWins.Load(f.words); ok {
		return v.(Strategy)
	}
	win := f.raceFullMul()
	v, _ := stratWins.LoadOrStore(f.words, win)
	return v.(Strategy)
}

// mulFullAuto is the strategy dispatch behind Mul.
func (f *Field) mulFullAuto(a, b Elem) []uint32 {
	switch f.MulStrategy() {
	case StratKaratsuba:
		return f.MulFullKaratsuba(a, b, karatsubaLevels)
	case StratComb:
		return f.MulFullComb(a, b)
	case StratCLMul:
		return f.MulFullCLMul(a, b)
	}
	return f.MulFull(a, b)
}

// raceFullMul times every strategy on pseudo-random dense operands and
// returns the fastest.
func (f *Field) raceFullMul() Strategy {
	rng := uint64(0x9e3779b97f4a7c15) ^ uint64(f.words)<<32
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return uint32(rng)
	}
	a, b := f.Zero(), f.Zero()
	for i := range a {
		a[i], b[i] = next(), next()
	}
	candidates := [NumStrategies]func(a, b Elem) []uint32{
		f.MulFull,
		func(a, b Elem) []uint32 { return f.MulFullKaratsuba(a, b, karatsubaLevels) },
		f.MulFullComb,
		f.MulFullCLMul,
	}
	best, bestT := StratSchoolbook, time.Duration(1<<62)
	for s, fn := range candidates {
		if t := f.timeFullMul(fn, a, b); t < bestT {
			best, bestT = Strategy(s), t
		}
	}
	return best
}

// timeFullMul measures one full-product candidate, growing the
// iteration count until the window is long enough to trust.
func (f *Field) timeFullMul(fn func(a, b Elem) []uint32, a, b Elem) time.Duration {
	const window = 20 * time.Microsecond
	for iters := 1; ; iters *= 4 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn(a, b)
		}
		if el := time.Since(start); el >= window || iters > 1<<20 {
			return el / time.Duration(iters)
		}
	}
}
