package gfbig

import (
	"fmt"
	"testing"
)

func testFields() []*Field {
	return []*Field{F163(), F233(), F283(), F409(), F571()}
}

func randElems(f *Field, n int, seed uint64) []Elem {
	rng := seed*0x9e3779b97f4a7c15 + 1
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return uint32(rng)
	}
	out := make([]Elem, n)
	for k := range out {
		e := f.Zero()
		for i := range e {
			e[i] = next()
		}
		if top := f.m % WordBits; top != 0 {
			e[f.words-1] &= 1<<top - 1
		}
		out[k] = e
	}
	return out
}

// TestScratchVariantsMatchReference checks every To-variant against its
// allocating counterpart, for every strategy, on every NIST field.
func TestScratchVariantsMatchReference(t *testing.T) {
	for _, f := range testFields() {
		t.Run(f.String(), func(t *testing.T) {
			s := f.NewScratch()
			es := randElems(f, 32, uint64(f.m))
			got := f.Zero()
			for i := 0; i+1 < len(es); i += 2 {
				a, b := es[i], es[i+1]
				want := f.Mul(a, b)
				for st := StratSchoolbook; st < NumStrategies; st++ {
					f.mulFullInto(st, a, b, s)
					f.reduceInPlace(s.full)
					copy(got, s.full[:f.words])
					if !f.Equal(got, want) {
						t.Fatalf("%v MulTo mismatch: got %s want %s", st, f.Hex(got), f.Hex(want))
					}
				}
				f.SquareTo(got, a, s)
				if !f.Equal(got, f.Sqr(a)) {
					t.Fatalf("SquareTo mismatch")
				}
				full := f.MulFull(a, b)
				f.ReduceTo(got, full, s)
				if !f.Equal(got, f.Reduce(full)) {
					t.Fatalf("ReduceTo mismatch")
				}
				f.AddTo(got, a, b)
				if !f.Equal(got, f.Add(a, b)) {
					t.Fatalf("AddTo mismatch")
				}
				if !f.IsZero(a) {
					f.InvTo(got, a, s)
					if !f.Equal(got, f.Inv(a)) {
						t.Fatalf("InvTo mismatch")
					}
				}
			}
		})
	}
}

// TestScratchAliasing proves dst may alias the operands.
func TestScratchAliasing(t *testing.T) {
	f := F233()
	s := f.NewScratch()
	es := randElems(f, 2, 99)
	a, b := es[0], es[1]
	want := f.Mul(a, b)
	x := f.Copy(a)
	f.MulTo(x, x, b, s)
	if !f.Equal(x, want) {
		t.Fatalf("MulTo(dst==a) mismatch")
	}
	x = f.Copy(b)
	f.MulTo(x, a, x, s)
	if !f.Equal(x, want) {
		t.Fatalf("MulTo(dst==b) mismatch")
	}
	x = f.Copy(a)
	f.SquareTo(x, x, s)
	if !f.Equal(x, f.Sqr(a)) {
		t.Fatalf("SquareTo(dst==a) mismatch")
	}
	x = f.Copy(a)
	f.InvTo(x, x, s)
	if !f.Equal(x, f.Inv(a)) {
		t.Fatalf("InvTo(dst==a) mismatch")
	}
}

// TestScratchZeroAlloc enforces the PR's core promise: the To-variants
// perform zero heap allocations in steady state.
func TestScratchZeroAlloc(t *testing.T) {
	f := F233()
	s := f.NewScratch()
	es := randElems(f, 2, 7)
	a, b := es[0], es[1]
	dst := f.Zero()
	full := f.MulFull(a, b)
	f.MulStrategy() // calibrate outside the measured window
	cases := []struct {
		name string
		fn   func()
	}{
		{"MulTo", func() { f.MulTo(dst, a, b, s) }},
		{"SquareTo", func() { f.SquareTo(dst, a, s) }},
		{"ReduceTo", func() { f.ReduceTo(dst, full, s) }},
		{"InvTo", func() { f.InvTo(dst, a, s) }},
		{"AddTo", func() { f.AddTo(dst, a, b) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(20, c.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, n)
		}
	}
}

// TestMulFullIntoEveryStrategyZeroAlloc pins the strategy explicitly so
// the zero-alloc property holds regardless of what calibration picked.
func TestMulFullIntoEveryStrategyZeroAlloc(t *testing.T) {
	f := F233()
	s := f.NewScratch()
	es := randElems(f, 2, 13)
	a, b := es[0], es[1]
	for st := StratSchoolbook; st < NumStrategies; st++ {
		n := testing.AllocsPerRun(20, func() {
			f.mulFullInto(st, a, b, s)
			f.reduceInPlace(s.full)
		})
		if n != 0 {
			t.Errorf("%v: %v allocs/op, want 0", st, n)
		}
	}
}

func TestVerifyMulStrategies(t *testing.T) {
	for _, f := range testFields() {
		if err := f.VerifyMulStrategies(16, 1); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
	}
}

func TestSetBytesIntoRoundTrip(t *testing.T) {
	f := F233()
	es := randElems(f, 8, 21)
	buf := make([]byte, (f.M()+7)/8)
	dst := f.Zero()
	for _, e := range es {
		f.BytesInto(buf, e)
		if err := f.SetBytesInto(dst, buf); err != nil {
			t.Fatalf("SetBytesInto: %v", err)
		}
		if !f.Equal(dst, e) {
			t.Fatalf("round trip mismatch")
		}
	}
	// Degree >= m must be rejected.
	buf[0] |= 0x80
	for i := range buf {
		if i > 0 {
			buf[i] = 0xFF
		}
	}
	if err := f.SetBytesInto(dst, buf); err == nil {
		t.Fatalf("SetBytesInto accepted degree >= m")
	}
}

func TestStrategyNames(t *testing.T) {
	want := []string{"schoolbook", "karatsuba", "comb", "clmul"}
	got := StrategyNames()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("StrategyNames() = %v, want %v", got, want)
	}
	for st := StratSchoolbook; st < NumStrategies; st++ {
		if st.String() != want[st] {
			t.Fatalf("Strategy(%d).String() = %q", st, st.String())
		}
	}
}

func BenchmarkMulToStrategies(b *testing.B) {
	f := F233()
	s := f.NewScratch()
	es := randElems(f, 2, 3)
	x, y := es[0], es[1]
	for st := StratSchoolbook; st < NumStrategies; st++ {
		b.Run(st.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f.mulFullInto(st, x, y, s)
				f.reduceInPlace(s.full)
			}
		})
	}
}

func BenchmarkInvTo(b *testing.B) {
	f := F233()
	s := f.NewScratch()
	a := randElems(f, 1, 5)[0]
	dst := f.Zero()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.InvTo(dst, a, s)
	}
}
