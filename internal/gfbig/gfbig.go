// Package gfbig implements large binary Galois fields GF(2^m) for the
// asymmetric-cryptography (ECC_l) side of the paper: m up to 571 covering
// all NIST binary curves, with sparse trinomial/pentanomial reduction.
//
// Elements are little-endian vectors of 32-bit words — the paper's memory
// layout ("8 words with 32 bits/word" for GF(2^233)). Multiplication is
// built from 32x32 carry-free partial products, the software model of the
// processor's single-cycle gf32bMult instruction, either schoolbook or
// with the two-level Karatsuba optimization of Section 3.3.4. Squaring
// spreads bits with zeros (Fig. 5c) so it needs no partial products at
// all beyond the spread. Inversion uses Itoh-Tsujii addition chains with
// an extended-Euclid cross-check.
package gfbig

import (
	"errors"
	"fmt"
	"math/bits"
)

var (
	errValueTooWide  = errors.New("gfbig: value exceeds field size")
	errDegreeTooHigh = errors.New("gfbig: value has degree >= field degree")
)

// WordBits is the machine word size of the modeled datapath.
const WordBits = 32

// Elem is a field element: little-endian 32-bit words, exactly Field.Words
// long. The caller must keep elements normalized (bits >= m clear);
// all Field methods return normalized elements.
type Elem []uint32

// Field is GF(2^m) with a sparse irreducible reduction polynomial
// x^m + x^e1 + ... + 1.
type Field struct {
	m     int
	words int
	exps  []int  // the non-leading exponents, descending, last is 0
	name  string // optional label, e.g. "K-233 field"
}

// New constructs GF(2^m) with reduction polynomial x^m + x^e1 + ... + x^ek,
// where exps lists e1..ek (each < m, must include 0 for the +1 term).
// Irreducibility is the caller's responsibility for non-NIST polynomials;
// the standard constructors below are all verified irreducible.
func New(m int, exps ...int) (*Field, error) {
	if m < 2 || m > 1024 {
		return nil, fmt.Errorf("gfbig: m=%d out of range", m)
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("gfbig: reduction polynomial needs low-order terms")
	}
	hasZero := false
	prev := m
	for _, e := range exps {
		if e >= prev {
			return nil, fmt.Errorf("gfbig: exponents must be descending and < m")
		}
		if e == 0 {
			hasZero = true
		}
		if e < 0 {
			return nil, fmt.Errorf("gfbig: negative exponent")
		}
		prev = e
	}
	if !hasZero {
		return nil, fmt.Errorf("gfbig: polynomial must include the constant term")
	}
	return &Field{m: m, words: (m + WordBits - 1) / WordBits, exps: exps}, nil
}

// MustNew is New but panics on error.
func MustNew(m int, exps ...int) *Field {
	f, err := New(m, exps...)
	if err != nil {
		panic(err)
	}
	return f
}

// NIST binary fields (FIPS 186 / SEC 2 reduction polynomials).
func F163() *Field { return named(163, "GF(2^163)", 7, 6, 3, 0) }

// F233 is the field of the paper's flagship curve K-233: x^233 + x^74 + 1.
func F233() *Field { return named(233, "GF(2^233)", 74, 0) }
func F283() *Field { return named(283, "GF(2^283)", 12, 7, 5, 0) }
func F409() *Field { return named(409, "GF(2^409)", 87, 0) }
func F571() *Field { return named(571, "GF(2^571)", 10, 5, 2, 0) }

func named(m int, name string, exps ...int) *Field {
	f := MustNew(m, exps...)
	f.name = name
	return f
}

// M returns the extension degree.
func (f *Field) M() int { return f.m }

// Words returns the element length in 32-bit words.
func (f *Field) Words() int { return f.words }

// Exponents returns the non-leading exponents of the reduction polynomial.
func (f *Field) Exponents() []int { return append([]int(nil), f.exps...) }

// String implements fmt.Stringer.
func (f *Field) String() string {
	if f.name != "" {
		return f.name
	}
	s := fmt.Sprintf("x^%d", f.m)
	for _, e := range f.exps {
		switch e {
		case 0:
			s += "+1"
		case 1:
			s += "+x"
		default:
			s += fmt.Sprintf("+x^%d", e)
		}
	}
	return "GF(2)[" + s + "]"
}

// Zero returns a new zero element.
func (f *Field) Zero() Elem { return make(Elem, f.words) }

// One returns the element 1.
func (f *Field) One() Elem {
	e := f.Zero()
	e[0] = 1
	return e
}

// FromUint64 returns the element with the low 64 bits set from v.
func (f *Field) FromUint64(v uint64) Elem {
	e := f.Zero()
	e[0] = uint32(v)
	if f.words > 1 {
		e[1] = uint32(v >> 32)
	}
	return e
}

// Copy returns a fresh copy of a.
func (f *Field) Copy(a Elem) Elem { return append(Elem(nil), a...) }

// IsZero reports whether a == 0.
func (f *Field) IsZero(a Elem) bool {
	for _, w := range a {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether a == b.
func (f *Field) Equal(a, b Elem) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Bit returns bit i of a.
func (f *Field) Bit(a Elem, i int) uint32 {
	if i < 0 || i >= f.words*WordBits {
		return 0
	}
	return a[i/WordBits] >> (i % WordBits) & 1
}

// Degree returns the degree of a as a polynomial, or -1 for zero.
func Degree(a []uint32) int {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != 0 {
			return i*WordBits + 31 - bits.LeadingZeros32(a[i])
		}
	}
	return -1
}

// Add returns a + b (XOR). It allocates the result.
func (f *Field) Add(a, b Elem) Elem {
	out := make(Elem, f.words)
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// Clmul32 returns the 64-bit carry-free product of two 32-bit words: the
// functional model of one gf32bMult partial product.
func Clmul32(a, b uint32) uint64 {
	var r uint64
	bb := uint64(b)
	for a != 0 {
		i := bits.TrailingZeros32(a)
		r ^= bb << i
		a &= a - 1
	}
	return r
}

// MulFull returns the unreduced 2*Words-word carry-free product of a and b
// by the schoolbook method: Words^2 32x32 partial products, exactly the
// paper's "Full Product" phase (64 gf32bMult calls for GF(2^233)).
func (f *Field) MulFull(a, b Elem) []uint32 {
	out := make([]uint32, 2*f.words)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			if bj == 0 {
				continue
			}
			p := Clmul32(ai, bj)
			out[i+j] ^= uint32(p)
			out[i+j+1] ^= uint32(p >> 32)
		}
	}
	return out
}

// Reduce reduces a full (2*Words) product modulo the field polynomial and
// returns a normalized element — the paper's "Polynomial Reduction" phase,
// cheap because the NIST polynomials are sparse.
func (f *Field) Reduce(full []uint32) Elem {
	r := append([]uint32(nil), full...)
	// Each pass replaces the highest word's bits >= m by strictly lower
	// contributions (every exponent e < m), so the top bit strictly
	// decreases and the loop terminates (see reduceInPlace).
	f.reduceInPlace(r)
	out := make(Elem, f.words)
	copy(out, r[:f.words])
	return out
}

// xorShifted xors the 32-bit word w into r at bit offset pos (pos >= 0).
func xorShifted(r []uint32, w uint32, pos int) {
	iw, sh := pos/WordBits, pos%WordBits
	r[iw] ^= w << sh
	if sh != 0 && iw+1 < len(r) {
		r[iw+1] ^= w >> (WordBits - sh)
	}
}

// Mul returns the reduced product a*b: full product + Reduce (the
// paper's "direct product" method). The full-product path is picked by
// the kernel-tier strategy in clmul64.go — schoolbook 32x32 words or
// paired 64-bit carry-less limbs — and honors a forced kernel tier
// (GFP_KERNEL_TIER / gf.ForceKernelTier).
func (f *Field) Mul(a, b Elem) Elem { return f.Reduce(f.mulFullAuto(a, b)) }

// SqrFull returns the unreduced square of a: each word's bits spread with
// interleaved zeros (Fig. 5c), needing no general partial products.
func (f *Field) SqrFull(a Elem) []uint32 {
	out := make([]uint32, 2*f.words)
	for i, w := range a {
		lo, hi := spread32(w)
		out[2*i] = lo
		out[2*i+1] = hi
	}
	return out
}

// Sqr returns a^2 reduced.
func (f *Field) Sqr(a Elem) Elem { return f.Reduce(f.SqrFull(a)) }

// spreadTab maps a byte to its zero-interleaved 16-bit spread.
var spreadTab = func() [256]uint16 {
	var t [256]uint16
	for v := 0; v < 256; v++ {
		var s uint16
		for i := 0; i < 8; i++ {
			if v>>i&1 == 1 {
				s |= 1 << (2 * i)
			}
		}
		t[v] = s
	}
	return t
}()

func spread32(w uint32) (lo, hi uint32) {
	lo = uint32(spreadTab[w&0xFF]) | uint32(spreadTab[w>>8&0xFF])<<16
	hi = uint32(spreadTab[w>>16&0xFF]) | uint32(spreadTab[w>>24&0xFF])<<16
	return
}

// Pow returns a^e for a non-negative big-endian bit exponent given as a
// uint64 (sufficient for the addition chains used internally and tests).
func (f *Field) Pow(a Elem, e uint64) Elem {
	r := f.One()
	base := f.Copy(a)
	for e > 0 {
		if e&1 == 1 {
			r = f.Mul(r, base)
		}
		base = f.Sqr(base)
		e >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of a by the Itoh-Tsujii addition
// chain — the same method the paper hand-codes for GF(2^233) (Section
// 3.3.4). It panics if a is zero.
func (f *Field) Inv(a Elem) Elem {
	inv, _ := f.InvOps(a)
	return inv
}

// InvTrace reports the field-operation counts of an Itoh-Tsujii inversion.
type InvTrace struct {
	Muls    int // full field multiplications
	Squares int // field squarings
}

// InvOps is Inv, additionally reporting the multiplication/squaring counts
// (for GF(2^233): 10 multiplications and 232 squarings).
func (f *Field) InvOps(a Elem) (Elem, InvTrace) {
	if f.IsZero(a) {
		panic("gfbig: inverse of zero")
	}
	var tr InvTrace
	sq := func(x Elem, k int) Elem {
		for i := 0; i < k; i++ {
			x = f.Sqr(x)
			tr.Squares++
		}
		return x
	}
	mul := func(x, y Elem) Elem {
		tr.Muls++
		return f.Mul(x, y)
	}
	// beta_e = a^(2^e - 1); binary addition chain on e = m-1.
	e := f.m - 1
	hb := 63 - bits.LeadingZeros64(uint64(e))
	beta := f.Copy(a)
	cur := 1
	for i := hb - 1; i >= 0; i-- {
		beta = mul(sq(f.Copy(beta), cur), beta)
		cur *= 2
		if e>>i&1 == 1 {
			beta = mul(sq(beta, 1), a)
			cur++
		}
	}
	return sq(beta, 1), tr
}

// InvEuclid computes a^-1 with the binary extended Euclidean algorithm,
// used as an independent cross-check of the ITA chain. It panics if a is
// zero.
func (f *Field) InvEuclid(a Elem) Elem {
	if f.IsZero(a) {
		panic("gfbig: inverse of zero")
	}
	w := f.words + 1
	// r0 = field polynomial, r1 = a.
	r0 := make([]uint32, 2*w)
	r0[f.m/WordBits] |= 1 << (f.m % WordBits)
	for _, e := range f.exps {
		r0[e/WordBits] ^= 1 << (e % WordBits)
	}
	r1 := make([]uint32, 2*w)
	copy(r1, a)
	s0 := make([]uint32, 2*w)
	s1 := make([]uint32, 2*w)
	s1[0] = 1
	for Degree(r1) >= 0 {
		d := Degree(r0) - Degree(r1)
		if d < 0 {
			r0, r1 = r1, r0
			s0, s1 = s1, s0
			continue
		}
		xorShiftedVec(r0, r1, d)
		xorShiftedVec(s0, s1, d)
	}
	// gcd is in r0 (== 1); s0 * a == 1 mod p, deg(s0) may reach ~2m.
	out := f.Reduce(s0[:2*f.words])
	return out
}

// xorShiftedVec computes dst ^= src << k (bitwise polynomial shift).
func xorShiftedVec(dst, src []uint32, k int) {
	iw, sh := k/WordBits, k%WordBits
	if sh == 0 {
		for i := 0; i+iw < len(dst) && i < len(src); i++ {
			dst[i+iw] ^= src[i]
		}
		return
	}
	var carry uint32
	for i := 0; i+iw < len(dst) && i < len(src); i++ {
		dst[i+iw] ^= src[i]<<sh | carry
		carry = src[i] >> (WordBits - sh)
	}
	if len(src)+iw < len(dst) {
		dst[len(src)+iw] ^= carry
	}
}

// Div returns a/b. It panics if b is zero.
func (f *Field) Div(a, b Elem) Elem { return f.Mul(a, f.Inv(b)) }

// SetBytes interprets big-endian bytes as an element, reducing bits >= m
// away. It returns an error if the value has degree >= m (strict mode is
// what ECC key parsing wants).
func (f *Field) SetBytes(b []byte) (Elem, error) {
	e := f.Zero()
	if err := f.SetBytesInto(e, b); err != nil {
		return nil, err
	}
	return e, nil
}

// Bytes returns the big-endian fixed-length (ceil(m/8) bytes) encoding of a.
func (f *Field) Bytes(a Elem) []byte {
	n := (f.m + 7) / 8
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[n-1-i] = byte(a[i/4] >> (8 * (i % 4)))
	}
	return out
}

// SetHex parses a big-endian hex string (no 0x prefix) into an element.
func (f *Field) SetHex(s string) (Elem, error) {
	if len(s)%2 == 1 {
		s = "0" + s
	}
	b := make([]byte, len(s)/2)
	for i := 0; i < len(b); i++ {
		hi, ok1 := hexVal(s[2*i])
		lo, ok2 := hexVal(s[2*i+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("gfbig: bad hex %q", s)
		}
		b[i] = hi<<4 | lo
	}
	return f.SetBytes(b)
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Hex returns the big-endian hex encoding of a (lower case, fixed width).
func (f *Field) Hex(a Elem) string {
	b := f.Bytes(a)
	const digits = "0123456789abcdef"
	out := make([]byte, 2*len(b))
	for i, v := range b {
		out[2*i] = digits[v>>4]
		out[2*i+1] = digits[v&0xF]
	}
	return string(out)
}
