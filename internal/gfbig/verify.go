package gfbig

// Differential verification of the wide-field full-product strategies —
// the gfbig analogue of gf.VerifyKernels. Every registered strategy
// (schoolbook, Karatsuba, comb, clmul), in both its allocating and
// scratch forms, must be bit-identical on random dense operands; the
// scratch square / reduce / invert paths are checked against their
// reference counterparts at the same time. gfserved runs this at
// startup for the ECC curve field and gates /healthz on it, so a
// backend whose carry-less limb math disagrees with the definitional
// schoolbook is ejected instead of signing with wrong arithmetic.

import "fmt"

// VerifyMulStrategies cross-checks all full-product strategies on
// vectors random dense operand pairs of this field, deterministically
// from seed. It returns nil when every strategy agrees bit-for-bit
// with the schoolbook reference and the scratch To-variants agree with
// their allocating counterparts.
func (f *Field) VerifyMulStrategies(vectors int, seed int64) error {
	rng := uint64(seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return uint32(rng)
	}
	randElem := func() Elem {
		e := f.Zero()
		for i := range e {
			e[i] = next()
		}
		// Clear bits >= m so the element is normalized.
		top := f.m % WordBits
		if top != 0 {
			e[f.words-1] &= 1<<top - 1
		}
		return e
	}
	s := f.NewScratch()
	strategies := [NumStrategies]func(a, b Elem) []uint32{
		f.MulFull,
		func(a, b Elem) []uint32 { return f.MulFullKaratsuba(a, b, karatsubaLevels) },
		f.MulFullComb,
		f.MulFullCLMul,
	}
	got := f.Zero()
	for v := 0; v < vectors; v++ {
		a, b := randElem(), randElem()
		ref := strategies[StratSchoolbook](a, b)
		for st := StratSchoolbook + 1; st < NumStrategies; st++ {
			full := strategies[st](a, b)
			for i := range ref {
				if full[i] != ref[i] {
					return fmt.Errorf("gfbig %s: %s full product differs from schoolbook at word %d (vector %d)",
						f, st, i, v)
				}
			}
		}
		want := f.Reduce(ref)
		// Every strategy again, through the scratch path this time.
		for st := StratSchoolbook; st < NumStrategies; st++ {
			f.mulFullInto(st, a, b, s)
			f.reduceInPlace(s.full)
			copy(got, s.full[:f.words])
			if !f.Equal(got, want) {
				return fmt.Errorf("gfbig %s: %s MulTo differs from reference Mul (vector %d)",
					f, st, v)
			}
		}
		f.ReduceTo(got, ref, s)
		if !f.Equal(got, want) {
			return fmt.Errorf("gfbig %s: ReduceTo differs from Reduce (vector %d)", f, v)
		}
		f.SquareTo(got, a, s)
		if !f.Equal(got, f.Sqr(a)) {
			return fmt.Errorf("gfbig %s: SquareTo differs from Sqr (vector %d)", f, v)
		}
		if !f.IsZero(a) {
			f.InvTo(got, a, s)
			if !f.Equal(got, f.Inv(a)) {
				return fmt.Errorf("gfbig %s: InvTo differs from Inv (vector %d)", f, v)
			}
		}
	}
	return nil
}
