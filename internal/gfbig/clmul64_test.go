package gfbig

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

func clmulTestFields() []*Field {
	return []*Field{
		F163(), F233(), F283(), F409(), F571(),
		MustNew(17, 3, 0),       // single-word field: degenerate limb count
		MustNew(64, 4, 3, 1, 0), // exactly two words, one full limb
	}
}

func TestMulFullCLMulMatchesSchoolbook(t *testing.T) {
	for _, f := range clmulTestFields() {
		rng := rand.New(rand.NewSource(int64(f.M())))
		for trial := 0; trial < 64; trial++ {
			a, b := randElem(rng, f), randElem(rng, f)
			want := f.MulFull(a, b)
			got := f.MulFullCLMul(a, b)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%v: MulFullCLMul word %d = %#x, schoolbook %#x", f, i, got[i], want[i])
				}
			}
			// Sparse operands exercise the zero-limb skips.
			s := f.Zero()
			s[rng.Intn(f.words)] = 1 << uint(rng.Intn(WordBits))
			want = f.MulFull(a, s)
			got = f.MulFullCLMul(a, s)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%v: sparse MulFullCLMul word %d = %#x, schoolbook %#x", f, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMulForcedTierRouting(t *testing.T) {
	defer gf.ForceKernelTier(gf.TierAuto)
	f := F233()
	rng := rand.New(rand.NewSource(233))
	for _, tier := range []gf.TierID{gf.TierAuto, gf.TierScalar, gf.TierTable, gf.TierCLMul} {
		gf.ForceKernelTier(tier)
		for trial := 0; trial < 16; trial++ {
			a, b := randElem(rng, f), randElem(rng, f)
			want := f.Reduce(f.MulFull(a, b))
			if got := f.Mul(a, b); !f.Equal(got, want) {
				t.Fatalf("tier %v: Mul = %s, want %s", tier, f.Hex(got), f.Hex(want))
			}
		}
	}
}

func TestMulCLMulReduced(t *testing.T) {
	f := F233()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 32; trial++ {
		a, b := randElem(rng, f), randElem(rng, f)
		want := f.Reduce(f.MulFull(a, b))
		if got := f.MulCLMul(a, b); !f.Equal(got, want) {
			t.Fatalf("MulCLMul = %s, want %s", f.Hex(got), f.Hex(want))
		}
	}
}

func BenchmarkMulFull233(b *testing.B) {
	f := F233()
	rng := rand.New(rand.NewSource(7))
	x, y := randElem(rng, f), randElem(rng, f)
	b.Run("schoolbook", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.MulFull(x, y)
		}
	})
	b.Run("clmul64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.MulFullCLMul(x, y)
		}
	})
	b.Run("comb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.MulFullComb(x, y)
		}
	})
}
