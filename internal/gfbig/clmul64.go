// Carry-less-multiply fast path for the wide-word fields. Adjacent
// 32-bit words are paired into 64-bit limbs and multiplied with
// gf.Clmul64 — the same integer-multiplier carry-less product that
// backs the small-field clmul kernel tier — cutting the partial-product
// count of a full multiplication by 4x versus the 32x32 schoolbook and
// replacing each bit-serial Clmul32 with a handful of bits.Mul64 calls.
//
// Strategy selection lives in strategy.go: a forced tier
// (GFP_KERNEL_TIER / gf.ForceKernelTier) pins the path and in auto mode
// a one-shot timing race per word count picks among all four
// full-product strategies.
package gfbig

import (
	"repro/internal/gf"
)

// pack64 packs little-endian 32-bit words into little-endian 64-bit
// limbs (the top limb is half-filled when len(a) is odd).
func pack64(a Elem) []uint64 {
	out := make([]uint64, (len(a)+1)/2)
	for i, w := range a {
		out[i/2] |= uint64(w) << (32 * uint(i&1))
	}
	return out
}

// MulFullCLMul returns the unreduced 2*Words-word carry-free product of
// a and b, like MulFull, but built from 64x64 carry-less limb products:
// ceil(Words/2)^2 gf.Clmul64 calls instead of Words^2 bit-serial
// Clmul32 calls. For GF(2^233) that is 16 limb products versus 64 word
// products per full multiplication.
func (f *Field) MulFullCLMul(a, b Elem) []uint32 {
	a64, b64 := pack64(a), pack64(b)
	acc := make([]uint64, 2*len(a64))
	clmulAccumulate(acc, a64, b64)
	out := make([]uint32, 2*f.words)
	for i := range out {
		out[i] = uint32(acc[i/2] >> (32 * uint(i&1)))
	}
	return out
}

// clmulAccumulate xors the carry-less limb product a64*b64 into acc
// (len(acc) >= len(a64)+len(b64)).
func clmulAccumulate(acc, a64, b64 []uint64) {
	for i, ai := range a64 {
		if ai == 0 {
			continue
		}
		for j, bj := range b64 {
			if bj == 0 {
				continue
			}
			hi, lo := gf.Clmul64(ai, bj)
			acc[i+j] ^= lo
			acc[i+j+1] ^= hi
		}
	}
}

// MulCLMul returns the reduced product a*b via the 64-bit limb path.
func (f *Field) MulCLMul(a, b Elem) Elem { return f.Reduce(f.MulFullCLMul(a, b)) }
