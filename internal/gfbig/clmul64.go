// Carry-less-multiply fast path for the wide-word fields. Adjacent
// 32-bit words are paired into 64-bit limbs and multiplied with
// gf.Clmul64 — the same integer-multiplier carry-less product that
// backs the small-field clmul kernel tier — cutting the partial-product
// count of a full multiplication by 4x versus the 32x32 schoolbook and
// replacing each bit-serial Clmul32 with a handful of bits.Mul64 calls.
//
// Strategy selection mirrors the small-field tier registry: a forced
// tier (GFP_KERNEL_TIER / gf.ForceKernelTier) pins the path — scalar
// keeps the definitional schoolbook, clmul pins the limb path — and in
// auto mode a one-shot timing race per word count picks the winner.
package gfbig

import (
	"sync"
	"time"

	"repro/internal/gf"
)

// pack64 packs little-endian 32-bit words into little-endian 64-bit
// limbs (the top limb is half-filled when len(a) is odd).
func pack64(a Elem) []uint64 {
	out := make([]uint64, (len(a)+1)/2)
	for i, w := range a {
		out[i/2] |= uint64(w) << (32 * uint(i&1))
	}
	return out
}

// MulFullCLMul returns the unreduced 2*Words-word carry-free product of
// a and b, like MulFull, but built from 64x64 carry-less limb products:
// ceil(Words/2)^2 gf.Clmul64 calls instead of Words^2 bit-serial
// Clmul32 calls. For GF(2^233) that is 16 limb products versus 64 word
// products per full multiplication.
func (f *Field) MulFullCLMul(a, b Elem) []uint32 {
	a64, b64 := pack64(a), pack64(b)
	acc := make([]uint64, 2*len(a64))
	for i, ai := range a64 {
		if ai == 0 {
			continue
		}
		for j, bj := range b64 {
			if bj == 0 {
				continue
			}
			hi, lo := gf.Clmul64(ai, bj)
			acc[i+j] ^= lo
			acc[i+j+1] ^= hi
		}
	}
	out := make([]uint32, 2*f.words)
	for i := range out {
		out[i] = uint32(acc[i/2] >> (32 * uint(i&1)))
	}
	return out
}

// MulCLMul returns the reduced product a*b via the 64-bit limb path.
func (f *Field) MulCLMul(a, b Elem) Elem { return f.Reduce(f.MulFullCLMul(a, b)) }

// clmulWins caches, per element word count, whether the limb path beat
// the schoolbook in the one-shot timing race. Keyed by word count (not
// by field) because the full product never touches the reduction
// polynomial, so cost depends only on operand width.
var clmulWins sync.Map // int -> bool

// mulFullAuto is the strategy dispatch behind Mul: a forced kernel tier
// overrides (scalar and the table-family tiers keep the definitional
// schoolbook, clmul pins the limb path); otherwise the calibrated
// winner for this operand width runs.
func (f *Field) mulFullAuto(a, b Elem) []uint32 {
	switch gf.ForcedKernelTier() {
	case gf.TierCLMul:
		return f.MulFullCLMul(a, b)
	case gf.TierAuto:
		if f.clmulPreferred() {
			return f.MulFullCLMul(a, b)
		}
	}
	return f.MulFull(a, b)
}

// clmulPreferred reports whether auto mode routes full products through
// MulFullCLMul, racing the two paths once per word count.
func (f *Field) clmulPreferred() bool {
	if v, ok := clmulWins.Load(f.words); ok {
		return v.(bool)
	}
	win := f.raceFullMul()
	v, _ := clmulWins.LoadOrStore(f.words, win)
	return v.(bool)
}

// raceFullMul times MulFull against MulFullCLMul on pseudo-random dense
// operands and reports whether the limb path won.
func (f *Field) raceFullMul() bool {
	rng := uint64(0x9e3779b97f4a7c15) ^ uint64(f.words)<<32
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return uint32(rng)
	}
	a, b := f.Zero(), f.Zero()
	for i := range a {
		a[i], b[i] = next(), next()
	}
	school := f.timeFullMul(f.MulFull, a, b)
	limb := f.timeFullMul(f.MulFullCLMul, a, b)
	return limb < school
}

// timeFullMul measures one full-product candidate, growing the
// iteration count until the window is long enough to trust.
func (f *Field) timeFullMul(fn func(a, b Elem) []uint32, a, b Elem) time.Duration {
	const window = 20 * time.Microsecond
	for iters := 1; ; iters *= 4 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn(a, b)
		}
		if el := time.Since(start); el >= window || iters > 1<<20 {
			return el / time.Duration(iters)
		}
	}
}
