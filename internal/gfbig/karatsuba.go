package gfbig

// Karatsuba carry-free multiplication (Section 3.3.4 of the paper): the
// product of two w-word polynomials is formed from three w/2-word products
// instead of four, at the cost of extra additions (free XORs in GF(2)).
// The paper applies a two-level Karatsuba to GF(2^233) (8 words -> 4 -> 2)
// and reports a 1.4x speedup over the direct product on their processor.

// MulFullKaratsuba returns the unreduced product of a and b using
// recursive Karatsuba with the given number of levels (0 = schoolbook).
// The result is identical to MulFull.
func (f *Field) MulFullKaratsuba(a, b Elem, levels int) []uint32 {
	out := make([]uint32, 2*f.words)
	karatsuba(out, a, b, levels)
	return out
}

// MulKaratsuba returns the reduced product using the paper's two-level
// Karatsuba decomposition.
func (f *Field) MulKaratsuba(a, b Elem) Elem {
	return f.Reduce(f.MulFullKaratsuba(a, b, 2))
}

// karatsuba xors a*b into out (len(out) >= len(a)+len(b)).
func karatsuba(out []uint32, a, b []uint32, levels int) {
	n := len(a)
	if len(b) != n {
		panic("gfbig: karatsuba operand length mismatch")
	}
	if levels <= 0 || n < 2 {
		schoolbookInto(out, a, b)
		return
	}
	h := n / 2
	a0, a1 := a[:h], a[h:]
	b0, b1 := b[:h], b[h:]
	// p0 = a0*b0, p2 = a1*b1, p1 = (a0+a1)*(b0+b1).
	// a1/b1 may be one word longer when n is odd; pad the sums.
	hw := n - h
	as := make([]uint32, hw)
	bs := make([]uint32, hw)
	copy(as, a1)
	copy(bs, b1)
	for i := 0; i < h; i++ {
		as[i] ^= a0[i]
		bs[i] ^= b0[i]
	}
	p0 := make([]uint32, 2*h)
	p2 := make([]uint32, 2*hw)
	p1 := make([]uint32, 2*hw)
	karatsuba(p0, a0, b0, levels-1)
	karatsuba(p2, a1, b1, levels-1)
	karatsuba(p1, as, bs, levels-1)
	// out += p0 + (p0+p1+p2) << h + p2 << 2h  (word shifts).
	for i, w := range p0 {
		out[i] ^= w
		out[i+h] ^= w
	}
	for i, w := range p1 {
		out[i+h] ^= w
	}
	for i, w := range p2 {
		out[i+h] ^= w
		out[i+2*h] ^= w
	}
}

func schoolbookInto(out []uint32, a, b []uint32) {
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			if bj == 0 {
				continue
			}
			p := Clmul32(ai, bj)
			out[i+j] ^= uint32(p)
			out[i+j+1] ^= uint32(p >> 32)
		}
	}
}

// Clmul32Count returns the number of 32-bit partial products Karatsuba at
// the given level uses for w words (w a power of two times the residue):
// schoolbook uses w^2, one level 3*(w/2)^2, two levels 9*(w/4)^2. This is
// the count the paper's cycle model charges for the gf32bMult instruction.
func Clmul32Count(words, levels int) int {
	if levels <= 0 || words < 2 {
		return words * words
	}
	h := words / 2
	hw := words - h
	return Clmul32Count(h, levels-1) + 2*Clmul32Count(hw, levels-1)
}
