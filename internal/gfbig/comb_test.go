package gfbig

import (
	"math/rand"
	"testing"
)

func TestCombMatchesSchoolbook(t *testing.T) {
	for _, f := range allFields() {
		rng := rand.New(rand.NewSource(int64(f.M()) + 77))
		for trial := 0; trial < 40; trial++ {
			a := randElem(rng, f)
			b := randElem(rng, f)
			want := f.MulFull(a, b)
			got := f.MulFullComb(a, b)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v: comb product differs at word %d", f, i)
				}
			}
			if !f.Equal(f.MulComb(a, b), f.Mul(a, b)) {
				t.Fatalf("%v: reduced comb product differs", f)
			}
		}
	}
}

func TestCombEdgeCases(t *testing.T) {
	f := F233()
	zero := f.Zero()
	one := f.One()
	if !f.IsZero(f.MulComb(zero, one)) {
		t.Fatal("0*1 != 0")
	}
	if !f.Equal(f.MulComb(one, one), one) {
		t.Fatal("1*1 != 1")
	}
	// All-ones operand exercises every table entry.
	a := f.Zero()
	for i := range a {
		a[i] = ^uint32(0)
	}
	a[len(a)-1] &= 1<<(233%32) - 1
	if !f.Equal(f.MulComb(a, a), f.Mul(a, a)) {
		t.Fatal("dense operand comb product differs")
	}
}
