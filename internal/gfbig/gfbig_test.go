package gfbig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allFields() []*Field {
	return []*Field{F163(), F233(), F283(), F409(), F571()}
}

func randElem(rng *rand.Rand, f *Field) Elem {
	e := f.Zero()
	for i := range e {
		e[i] = rng.Uint32()
	}
	// normalize: clear bits >= m
	top := f.M() % WordBits
	if top != 0 {
		e[len(e)-1] &= 1<<top - 1
	}
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := New(233); err == nil {
		t.Error("no low terms accepted")
	}
	if _, err := New(233, 74); err == nil {
		t.Error("missing constant term accepted")
	}
	if _, err := New(233, 74, 74, 0); err == nil {
		t.Error("non-descending exponents accepted")
	}
	if _, err := New(233, 233, 0); err == nil {
		t.Error("exponent >= m accepted")
	}
}

func TestFieldParameters(t *testing.T) {
	f := F233()
	if f.M() != 233 || f.Words() != 8 {
		t.Fatalf("K-233 field: m=%d words=%d", f.M(), f.Words())
	}
	exps := f.Exponents()
	if len(exps) != 2 || exps[0] != 74 || exps[1] != 1-1 {
		t.Fatalf("exponents = %v", exps)
	}
}

func TestClmul32(t *testing.T) {
	if Clmul32(0b101, 0b11) != 0b1111 {
		t.Fatal("(x^2+1)(x+1) wrong")
	}
	if Clmul32(0xFFFFFFFF, 0xFFFFFFFF) != 0x55555555_55555555 {
		t.Fatalf("all-ones clmul = %#x", Clmul32(0xFFFFFFFF, 0xFFFFFFFF))
	}
	prop := func(a, b uint32) bool { return Clmul32(a, b) == Clmul32(b, a) }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMulSmallAgainstKnownField(t *testing.T) {
	// GF(2^8) with the AES polynomial, expressed as a gfbig field, must
	// reproduce known AES-field products.
	f := MustNew(8, 4, 3, 1, 0)
	a := f.FromUint64(0x53)
	b := f.FromUint64(0xCA)
	if p := f.Mul(a, b); p[0] != 0x01 {
		t.Fatalf("0x53*0xCA = %#x, want 1", p[0])
	}
	if p := f.Mul(f.FromUint64(0x57), f.FromUint64(0x83)); p[0] != 0xC1 {
		t.Fatalf("0x57*0x83 = %#x, want 0xC1", p[0])
	}
}

func TestMulFieldAxioms(t *testing.T) {
	for _, f := range allFields() {
		rng := rand.New(rand.NewSource(int64(f.M())))
		one := f.One()
		for trial := 0; trial < 25; trial++ {
			a := randElem(rng, f)
			b := randElem(rng, f)
			c := randElem(rng, f)
			if !f.Equal(f.Mul(a, one), a) {
				t.Fatalf("%v: a*1 != a", f)
			}
			if !f.Equal(f.Mul(a, b), f.Mul(b, a)) {
				t.Fatalf("%v: commutativity", f)
			}
			if !f.Equal(f.Mul(a, f.Mul(b, c)), f.Mul(f.Mul(a, b), c)) {
				t.Fatalf("%v: associativity", f)
			}
			if !f.Equal(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c))) {
				t.Fatalf("%v: distributivity", f)
			}
		}
	}
}

func TestSqrMatchesMul(t *testing.T) {
	for _, f := range allFields() {
		rng := rand.New(rand.NewSource(int64(f.M()) + 1))
		for trial := 0; trial < 50; trial++ {
			a := randElem(rng, f)
			if !f.Equal(f.Sqr(a), f.Mul(a, a)) {
				t.Fatalf("%v: sqr != mul(a,a)", f)
			}
		}
	}
}

func TestFrobeniusLinearity(t *testing.T) {
	f := F233()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randElem(rng, f)
		b := randElem(rng, f)
		if !f.Equal(f.Sqr(f.Add(a, b)), f.Add(f.Sqr(a), f.Sqr(b))) {
			t.Fatal("(a+b)^2 != a^2+b^2")
		}
	}
}

func TestKaratsubaMatchesSchoolbook(t *testing.T) {
	for _, f := range allFields() {
		rng := rand.New(rand.NewSource(int64(f.M()) + 2))
		for trial := 0; trial < 30; trial++ {
			a := randElem(rng, f)
			b := randElem(rng, f)
			want := f.MulFull(a, b)
			for levels := 1; levels <= 3; levels++ {
				got := f.MulFullKaratsuba(a, b, levels)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v: karatsuba(%d levels) differs at word %d", f, levels, i)
					}
				}
			}
			if !f.Equal(f.MulKaratsuba(a, b), f.Mul(a, b)) {
				t.Fatalf("%v: MulKaratsuba reduced product differs", f)
			}
		}
	}
}

func TestClmul32Count(t *testing.T) {
	// 8 words: schoolbook 64, 1-level 48, 2-level 36 partial products.
	if Clmul32Count(8, 0) != 64 {
		t.Errorf("schoolbook count = %d", Clmul32Count(8, 0))
	}
	if Clmul32Count(8, 1) != 48 {
		t.Errorf("1-level count = %d", Clmul32Count(8, 1))
	}
	if Clmul32Count(8, 2) != 36 {
		t.Errorf("2-level count = %d", Clmul32Count(8, 2))
	}
}

func TestInverse(t *testing.T) {
	for _, f := range allFields() {
		rng := rand.New(rand.NewSource(int64(f.M()) + 3))
		one := f.One()
		for trial := 0; trial < 10; trial++ {
			a := randElem(rng, f)
			if f.IsZero(a) {
				continue
			}
			inv := f.Inv(a)
			if !f.Equal(f.Mul(a, inv), one) {
				t.Fatalf("%v: a * a^-1 != 1", f)
			}
			if !f.Equal(f.InvEuclid(a), inv) {
				t.Fatalf("%v: Euclid inverse != ITA inverse", f)
			}
		}
	}
}

func TestInvOpsCounts(t *testing.T) {
	// ITA on GF(2^233): m-1 = 232 squarings total and 10 multiplications
	// (binary chain on 232 = 0b11101000: 7 doublings + 3 add-ones).
	f := F233()
	a := f.FromUint64(0xDEADBEEF)
	_, tr := f.InvOps(a)
	if tr.Squares != 232 {
		t.Errorf("squares = %d, want 232", tr.Squares)
	}
	if tr.Muls != 10 {
		t.Errorf("muls = %d, want 10", tr.Muls)
	}
}

func TestInverseOfZeroPanics(t *testing.T) {
	f := F233()
	for name, fn := range map[string]func(){
		"Inv":       func() { f.Inv(f.Zero()) },
		"InvEuclid": func() { f.InvEuclid(f.Zero()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(0) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFermatIdentity(t *testing.T) {
	// a^(2^m) == a: square m times.
	for _, f := range []*Field{F163(), F233()} {
		rng := rand.New(rand.NewSource(int64(f.M()) + 4))
		a := randElem(rng, f)
		x := f.Copy(a)
		for i := 0; i < f.M(); i++ {
			x = f.Sqr(x)
		}
		if !f.Equal(x, a) {
			t.Fatalf("%v: a^(2^m) != a", f)
		}
	}
}

func TestPow(t *testing.T) {
	f := F233()
	rng := rand.New(rand.NewSource(11))
	a := randElem(rng, f)
	// a^5 == a*a*a*a*a
	want := f.Mul(f.Mul(f.Mul(f.Mul(a, a), a), a), a)
	if !f.Equal(f.Pow(a, 5), want) {
		t.Fatal("Pow(a,5) wrong")
	}
	if !f.Equal(f.Pow(a, 0), f.One()) {
		t.Fatal("Pow(a,0) != 1")
	}
}

func TestDivAndDegree(t *testing.T) {
	f := F233()
	rng := rand.New(rand.NewSource(12))
	a := randElem(rng, f)
	b := randElem(rng, f)
	if f.IsZero(b) {
		t.Skip("zero b")
	}
	q := f.Div(a, b)
	if !f.Equal(f.Mul(q, b), a) {
		t.Fatal("Div broken")
	}
	if Degree([]uint32{0, 0}) != -1 {
		t.Error("Degree(0) != -1")
	}
	if Degree([]uint32{0, 8}) != 35 {
		t.Errorf("Degree = %d, want 35", Degree([]uint32{0, 8}))
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for _, f := range allFields() {
		rng := rand.New(rand.NewSource(int64(f.M()) + 5))
		for trial := 0; trial < 20; trial++ {
			a := randElem(rng, f)
			b := f.Bytes(a)
			if len(b) != (f.M()+7)/8 {
				t.Fatalf("%v: bytes length %d", f, len(b))
			}
			back, err := f.SetBytes(b)
			if err != nil {
				t.Fatal(err)
			}
			if !f.Equal(back, a) {
				t.Fatalf("%v: bytes round trip", f)
			}
		}
	}
}

func TestSetBytesRejectsOversized(t *testing.T) {
	f := F233()
	b := make([]byte, 30)
	b[0] = 0xFF // degree 239 > 232
	if _, err := f.SetBytes(b); err == nil {
		t.Error("oversized value accepted")
	}
}

func TestHexRoundTrip(t *testing.T) {
	f := F233()
	rng := rand.New(rand.NewSource(13))
	a := randElem(rng, f)
	h := f.Hex(a)
	back, err := f.SetHex(h)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(back, a) {
		t.Fatal("hex round trip")
	}
	if _, err := f.SetHex("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	// Odd-length hex gets a leading zero.
	if _, err := f.SetHex("f"); err != nil {
		t.Errorf("odd hex rejected: %v", err)
	}
}

func TestBitAndFromUint64(t *testing.T) {
	f := F233()
	a := f.FromUint64(1 << 40)
	if f.Bit(a, 40) != 1 || f.Bit(a, 39) != 0 {
		t.Fatal("Bit() wrong")
	}
	if f.Bit(a, -1) != 0 || f.Bit(a, 10000) != 0 {
		t.Fatal("out-of-range Bit() not zero")
	}
}

func TestReduceIdempotentOnSmallValues(t *testing.T) {
	f := F233()
	a := f.FromUint64(12345)
	full := make([]uint32, 2*f.Words())
	copy(full, a)
	if !f.Equal(f.Reduce(full), a) {
		t.Fatal("Reduce changed an already-reduced value")
	}
}

func TestStringer(t *testing.T) {
	if F233().String() != "GF(2^233)" {
		t.Errorf("F233 name = %q", F233().String())
	}
	f := MustNew(9, 1, 0)
	if f.String() != "GF(2)[x^9+x+1]" {
		t.Errorf("generic name = %q", f.String())
	}
}
