package gfbig

// Square roots, traces and half-traces: the quadratic-equation toolkit
// binary-curve point compression depends on. All NIST binary fields have
// odd m, so the half-trace solves z^2 + z = c directly.

// Sqrt returns the (unique) square root of a: a^(2^(m-1)), computed by
// m-1 squarings. Squaring is a bijection in characteristic 2.
func (f *Field) Sqrt(a Elem) Elem {
	x := f.Copy(a)
	for i := 0; i < f.m-1; i++ {
		x = f.Sqr(x)
	}
	return x
}

// Trace returns the absolute trace Tr(a) = sum_{i=0}^{m-1} a^(2^i),
// which is always 0 or 1.
func (f *Field) Trace(a Elem) uint32 {
	t := f.Copy(a)
	x := f.Copy(a)
	for i := 1; i < f.m; i++ {
		x = f.Sqr(x)
		t = f.Add(t, x)
	}
	return t[0] & 1
}

// HalfTrace returns H(a) = sum_{i=0}^{(m-1)/2} a^(2^(2i)) for odd m.
// When Tr(a) = 0, z = H(a) satisfies z^2 + z = a (the other solution is
// z + 1). It panics for even m.
func (f *Field) HalfTrace(a Elem) Elem {
	if f.m%2 == 0 {
		panic("gfbig: half-trace requires odd extension degree")
	}
	h := f.Copy(a)
	x := f.Copy(a)
	for i := 1; i <= (f.m-1)/2; i++ {
		x = f.Sqr(f.Sqr(x))
		h = f.Add(h, x)
	}
	return h
}

// SolveQuadratic finds z with z^2 + z = a, reporting ok = false when no
// solution exists (Tr(a) = 1). For odd m it uses the half-trace.
func (f *Field) SolveQuadratic(a Elem) (Elem, bool) {
	if f.Trace(a) != 0 {
		return nil, false
	}
	z := f.HalfTrace(a)
	// Verify (guards against even-m misuse and catches model bugs).
	if !f.Equal(f.Add(f.Sqr(z), z), a) {
		return nil, false
	}
	return z, true
}
