package gfbig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// testing/quick properties on the wide-field core, seeded through int64
// generators so elements span the whole field.

func quickElem(f *Field, seed int64) Elem {
	rng := rand.New(rand.NewSource(seed))
	return randElem(rng, f)
}

func TestQuickFieldProperties(t *testing.T) {
	f := F233()
	one := f.One()
	prop := func(sa, sb, sc int64) bool {
		a, b, c := quickElem(f, sa), quickElem(f, sb), quickElem(f, sc)
		// (a+b)*c == a*c + b*c
		if !f.Equal(f.Mul(f.Add(a, b), c), f.Add(f.Mul(a, c), f.Mul(b, c))) {
			return false
		}
		// Frobenius is a ring homomorphism: (a*b)^2 == a^2 * b^2.
		if !f.Equal(f.Sqr(f.Mul(a, b)), f.Mul(f.Sqr(a), f.Sqr(b))) {
			return false
		}
		// Inverse round trip (nonzero a).
		if !f.IsZero(a) && !f.Equal(f.Mul(a, f.Inv(a)), one) {
			return false
		}
		// Karatsuba and comb agree with schoolbook.
		if !f.Equal(f.MulKaratsuba(a, b), f.Mul(a, b)) {
			return false
		}
		return f.Equal(f.MulComb(a, b), f.Mul(a, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := F571()
	prop := func(seed int64) bool {
		a := quickElem(f, seed)
		back, err := f.SetBytes(f.Bytes(a))
		return err == nil && f.Equal(back, a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
