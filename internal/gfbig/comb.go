package gfbig

// Left-to-right comb multiplication with a 4-bit window (Lopez-Dahab /
// Hankerson-Menezes-Vanstone Alg. 2.36) — the software method behind the
// precomputed-table baselines (e.g. Clercq [11]) the paper compares
// against. Included as a real algorithm (not just a cost model) so the
// kernels' baseline pricing is backed by working code.

// MulFullComb returns the unreduced product via the windowed comb. The
// result always equals MulFull.
func (f *Field) MulFullComb(a, b Elem) []uint32 {
	const w = 4 // window width in bits
	// Precompute T[u] = u(x) * b(x) for u = 0..15 (each W+1 words).
	bw := f.words + 1
	var tab [16][]uint32
	tab[0] = make([]uint32, bw)
	tab[1] = make([]uint32, bw)
	copy(tab[1], b)
	for u := 2; u < 16; u += 2 {
		// T[u] = T[u/2] << 1; T[u+1] = T[u] + b.
		tab[u] = make([]uint32, bw)
		var carry uint32
		for i, v := range tab[u/2] {
			tab[u][i] = v<<1 | carry
			carry = v >> 31
		}
		tab[u+1] = make([]uint32, bw)
		for i := range tab[u] {
			tab[u+1][i] = tab[u][i]
		}
		for i := 0; i < f.words; i++ {
			tab[u+1][i] ^= b[i]
		}
	}
	// Accumulate window positions from the top nibble down.
	r := make([]uint32, 2*f.words+1)
	for k := WordBits/w - 1; k >= 0; k-- {
		for j := 0; j < f.words; j++ {
			u := a[j] >> (w * k) & 0xF
			if u != 0 {
				for i, v := range tab[u] {
					r[j+i] ^= v
				}
			}
		}
		if k > 0 {
			var carry uint32
			for i, v := range r {
				r[i] = v<<w | carry
				carry = v >> (WordBits - w)
			}
		}
	}
	return r[:2*f.words]
}

// MulComb returns the reduced windowed-comb product.
func (f *Field) MulComb(a, b Elem) Elem { return f.Reduce(f.MulFullComb(a, b)) }
