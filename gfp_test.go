package gfp

import (
	"bytes"
	"math/rand"
	"testing"
)

// The facade tests exercise the whole public API surface end to end —
// what a downstream user's first hour with the library looks like.

func TestFacadeFieldRoundTrip(t *testing.T) {
	f, err := NewField(8, 0x11D)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mul(0x57, 0x83) == 0 {
		t.Fatal("multiplication broken")
	}
	if _, err := NewField(8, 0x100); err == nil {
		t.Fatal("reducible/degenerate polynomial accepted")
	}
	if AESField().Poly() != 0x11B {
		t.Fatal("AES field wrong")
	}
	if len(IrreduciblePolys(8)) != 30 {
		t.Fatal("irreducible enumeration wrong")
	}
	df, err := DefaultField(5)
	if err != nil || df.M() != 5 {
		t.Fatal("default field broken")
	}
}

func TestFacadeRS(t *testing.T) {
	f, _ := DefaultField(8)
	code, err := NewRS(f, 255, 239)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	msg := make([]byte, code.K)
	rng.Read(msg)
	cw, err := code.EncodeBytes(msg)
	if err != nil {
		t.Fatal(err)
	}
	cw[3] ^= 0xFF
	cw[77] ^= 0x10
	got, err := code.DecodeBytes(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("RS round trip failed")
	}
}

func TestFacadeBCH(t *testing.T) {
	f, _ := DefaultField(5)
	code, err := NewBCH(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	if code.N != 31 || code.K != 11 {
		t.Fatalf("BCH(31,11,5) expected, got (%d,%d)", code.N, code.K)
	}
	msg := make([]byte, code.K)
	msg[0], msg[5] = 1, 1
	cw, _ := code.Encode(msg)
	cw[0] ^= 1
	cw[30] ^= 1
	res, err := code.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if res.Message[i] != msg[i] {
			t.Fatal("BCH round trip failed")
		}
	}
}

func TestFacadeAES(t *testing.T) {
	c, err := NewAES([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("16-byte message!")
	ct := make([]byte, 16)
	c.Encrypt(ct, pt)
	back := make([]byte, 16)
	c.Decrypt(back, ct)
	if !bytes.Equal(back, pt) {
		t.Fatal("AES round trip failed")
	}
	buf := make([]byte, 33)
	if err := c.EncryptCTR(buf[:32], make([]byte, 32), make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeECDH(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, curve := range Curves() {
		a, err := GenerateECDHKey(curve, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateECDHKey(curve, rng)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := a.SharedSecret(b.Pub)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := b.SharedSecret(a.Pub)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1, s2) {
			t.Fatalf("%v: ECDH mismatch", curve)
		}
	}
}

func TestFacadeWideField(t *testing.T) {
	f := F233()
	if f.M() != 233 {
		t.Fatal("F233 wrong")
	}
	a := f.FromUint64(3)
	if !f.Equal(f.Mul(a, f.Inv(a)), f.One()) {
		t.Fatal("wide inverse broken")
	}
	if _, err := NewWideField(233, 74, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWideField(233, 74); err == nil {
		t.Fatal("missing constant term accepted")
	}
}

func TestFacadeProcessor(t *testing.T) {
	prog, err := Assemble(`
		movi r1, =field
		gfconf r1
		movi r2, #0x53
		gfmulinv r3, r2
		halt
	.data
	field: .word 0x11B
	`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcessor(prog, ProcessorConfig{GFUnit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.Reg(3) != 0xCA {
		t.Fatalf("inv(0x53) = %#x, want 0xCA", p.Reg(3))
	}
	u, err := NewGFUnit(0x11D)
	if err != nil {
		t.Fatal(err)
	}
	if u.M() != 8 {
		t.Fatal("GF unit config wrong")
	}
}

func TestFacadeChannels(t *testing.T) {
	bsc, err := NewBSC(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ch Channel = bsc
	out := ch.TransmitBits(make([]byte, 1000))
	errs := 0
	for _, b := range out {
		errs += int(b)
	}
	if errs == 0 || errs > 300 {
		t.Fatalf("BSC produced %d errors", errs)
	}
	if _, err := NewBurstChannel(0.01, 0.1, 0.001, 0.3, 1); err != nil {
		t.Fatal(err)
	}
	if p := BPSKBitErrorProb(0); p < 0.07 || p > 0.09 {
		t.Fatalf("BPSK BER = %v", p)
	}
}

func TestFacadeGCM(t *testing.T) {
	c, _ := NewAES(make([]byte, 16))
	var g *GCM = c.NewGCM()
	nonce := make([]byte, 12)
	sealed, err := g.Seal(nonce, []byte("packet"), []byte("hdr"))
	if err != nil {
		t.Fatal(err)
	}
	back, err := g.Open(nonce, sealed, []byte("hdr"))
	if err != nil || string(back) != "packet" {
		t.Fatal("GCM facade round trip failed")
	}
}

func TestFacadeECDSAAndTNAF(t *testing.T) {
	curve := K233()
	rng := rand.New(rand.NewSource(9))
	key, err := GenerateECDHKey(curve, rng)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := key.Sign(rng, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if !ECDSAVerify(curve, key.Pub, []byte("msg"), sig) {
		t.Fatal("facade ECDSA broken")
	}
	// TNAF is reachable through the Curve alias.
	p, err := curve.ScalarMultTNAF(sig.R, curve.Generator())
	if err != nil || !curve.OnCurve(p) {
		t.Fatal("facade TNAF broken")
	}
}

func TestFacadeInterleavedRS(t *testing.T) {
	f, _ := DefaultField(8)
	code, _ := NewRS(f, 255, 239)
	iv, err := NewInterleavedRS(code, 3)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]Elem, iv.FrameK())
	frame, err := iv.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := iv.Decode(frame)
	if err != nil || len(got) != iv.FrameK() {
		t.Fatal("interleaved facade round trip failed")
	}
}
