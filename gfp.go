// Package gfp is the public API of the Galois Field Processor
// reproduction: a Go implementation of the ISCA 2017 paper "A
// Programmable Galois Field Processor for the Internet of Things".
//
// It re-exports the user-facing pieces of the internal packages:
//
//   - Small binary fields GF(2^m), m <= 16, with arbitrary irreducible
//     polynomials (Field), and the wide binary fields of the NIST curves
//     (WideField).
//   - Reed-Solomon and binary BCH codecs with the paper's full decoder
//     datapath (syndromes, Berlekamp-Massey, Chien search, Forney).
//   - AES-128/192/256 built from GF arithmetic, plus CTR/CBC modes.
//   - Binary-curve elliptic cryptography (NIST K-163 .. K-283) and ECDH.
//   - The GF processor itself: the Table-1 instruction set, a two-pass
//     assembler, and the cycle-accurate two-stage processor simulator
//     with the configurable GF arithmetic unit.
//   - Channel models (BSC, Gilbert-Elliott, BPSK/AWGN) for link
//     simulations.
//
// See the examples directory for runnable walkthroughs and cmd/paperbench
// for the harness that regenerates every table and figure of the paper's
// evaluation section.
package gfp

import (
	"repro/internal/aes"
	"repro/internal/bch"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/gf"
	"repro/internal/gfbig"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/rs"
)

// --- Small Galois fields ---

// Field is a small binary Galois field GF(2^m), m = 1..16.
type Field = gf.Field

// Elem is an element of a small field.
type Elem = gf.Elem

// NewField constructs GF(2^m) with the given irreducible polynomial
// (leading x^m term included, e.g. 0x11B for the AES field).
func NewField(m int, poly uint32) (*Field, error) { return gf.New(m, poly) }

// DefaultField constructs GF(2^m) with a conventional primitive polynomial.
func DefaultField(m int) (*Field, error) { return gf.NewDefault(m) }

// AESField returns GF(2^8)/x^8+x^4+x^3+x+1.
func AESField() *Field { return gf.AES() }

// IrreduciblePolys enumerates all irreducible degree-m polynomials —
// every one of them is a legal processor configuration.
func IrreduciblePolys(m int) []uint32 { return gf.IrreduciblePolys(m) }

// --- Kernel tiers ---

// KernelTier identifies one GF bulk-kernel implementation tier (scalar,
// packed, table, bitsliced, clmul); see docs/GF.md.
type KernelTier = gf.TierID

// ParseKernelTier maps a tier name (or "auto"/"") to a KernelTier.
func ParseKernelTier(name string) (KernelTier, error) { return gf.ParseTier(name) }

// ForceKernelTier pins every bulk kernel process-wide to one tier
// (gf.TierAuto restores the calibrated per-(field, op, length) choice).
// Ops the forced tier lacks fall back to the scalar reference, so
// results stay bit-exact. Equivalent to the GFP_KERNEL_TIER env knob.
func ForceKernelTier(t KernelTier) { gf.ForceKernelTier(t) }

// VerifyKernels differentially checks every registered kernel tier of f
// against the scalar reference over pseudo-random vectors, returning
// the first disagreement (nil when all tiers agree).
func VerifyKernels(f *Field, vectors int, seed int64) error {
	return gf.VerifyKernels(f, vectors, seed)
}

// --- Wide Galois fields (ECC_l) ---

// WideField is a large binary field GF(2^m) (m up to 571) with a sparse
// reduction polynomial.
type WideField = gfbig.Field

// WideElem is an element of a wide field (little-endian 32-bit words).
type WideElem = gfbig.Elem

// F233 returns GF(2^233)/x^233+x^74+1, the paper's flagship wide field.
func F233() *WideField { return gfbig.F233() }

// NewWideField builds GF(2^m) with reduction terms x^m + x^e1 + ... + 1.
func NewWideField(m int, exps ...int) (*WideField, error) { return gfbig.New(m, exps...) }

// --- Error-correction codes ---

// RSCode is a Reed-Solomon code over GF(2^m).
type RSCode = rs.Code

// RSDecodeResult reports a Reed-Solomon decode.
type RSDecodeResult = rs.DecodeResult

// NewRS constructs RS(n, k) over field f (n <= 2^m - 1; shortened codes
// allowed). The paper's flagship is NewRS(f8, 255, 239).
func NewRS(f *Field, n, k int) (*RSCode, error) { return rs.New(f, n, k) }

// BCHCode is a binary BCH code of length 2^m - 1.
type BCHCode = bch.Code

// BCHDecodeResult reports a BCH decode.
type BCHDecodeResult = bch.DecodeResult

// NewBCH constructs the narrow-sense binary BCH code with error-correcting
// capability t over field f. The paper's flagship, BCH(31,11,5), is
// NewBCH(f5, 5).
func NewBCH(f *Field, t int) (*BCHCode, error) { return bch.New(f, t) }

// InterleavedRS is a depth-I symbol-interleaved RS frame codec whose
// burst tolerance is I*t symbols.
type InterleavedRS = rs.Interleaved

// NewInterleavedRS wraps an RS code with interleaving depth I.
func NewInterleavedRS(c *RSCode, depth int) (*InterleavedRS, error) {
	return rs.NewInterleaved(c, depth)
}

// MinimalPolynomial returns the binary minimal polynomial of a field
// element (bit i = coefficient of x^i) — the building block of BCH
// generator construction.
func MinimalPolynomial(f *Field, a Elem) uint32 { return gf.MinimalPolynomial(f, a) }

// --- Symmetric cryptography ---

// AES is an AES cipher built from GF(2^8) arithmetic. It satisfies
// crypto/cipher.Block.
type AES = aes.Cipher

// NewAES creates an AES-128/192/256 cipher for a 16/24/32-byte key.
func NewAES(key []byte) (*AES, error) { return aes.NewCipher(key) }

// GCM is an AES-GCM AEAD (96-bit nonce, 16-byte tag) whose GHASH
// authenticator is GF(2^128) arithmetic on the same carry-free-product
// primitives as the wide-field ECC operations.
type GCM = aes.GCM

// --- Asymmetric cryptography ---

// Curve is a binary elliptic curve y^2 + xy = x^3 + ax^2 + b.
type Curve = ecc.Curve

// CurvePoint is an affine curve point.
type CurvePoint = ecc.Point

// ECDHKey is an ECDH private/public key pair.
type ECDHKey = ecc.PrivateKey

// ECDSASignature is an ECDSA signature over a binary curve.
type ECDSASignature = ecc.Signature

// ECDSAVerify checks sig over msg (SHA-256) against the public point.
func ECDSAVerify(c *Curve, pub CurvePoint, msg []byte, sig *ECDSASignature) bool {
	return ecc.Verify(c, pub, msg, sig)
}

// K233 returns the NIST Koblitz curve the paper hand-codes.
func K233() *Curve { return ecc.K233() }

// Curves returns all built-in NIST binary curves.
func Curves() []*Curve { return ecc.Curves() }

// GenerateECDHKey creates an ECDH key pair on the curve.
func GenerateECDHKey(c *Curve, rand interface{ Read([]byte) (int, error) }) (*ECDHKey, error) {
	return ecc.GenerateKey(c, rand)
}

// --- The processor ---

// Program is an assembled GF-processor program.
type Program = isa.Program

// Assemble translates assembly text (Table-1 GF instructions plus the
// M0+ scalar subset) into a Program.
func Assemble(src string) (*Program, error) { return isa.Assemble(src) }

// Processor is the cycle-accurate two-stage in-order core with the GF
// arithmetic unit.
type Processor = core.Processor

// ProcessorConfig configures simulator construction.
type ProcessorConfig = core.Config

// NewProcessor builds a simulator for the program. Set cfg.GFUnit to
// attach the GF arithmetic unit (the paper's processor); leave it false
// for the baseline scalar core.
func NewProcessor(p *Program, cfg ProcessorConfig) (*Processor, error) { return core.New(p, cfg) }

// GFUnit is the standalone GF arithmetic unit microarchitecture model.
type GFUnit = core.GFUnit

// NewGFUnit returns a GF unit configured for an irreducible polynomial of
// degree 2..8.
func NewGFUnit(poly uint32) (*GFUnit, error) { return core.NewGFUnit(poly) }

// --- Channels ---

// Channel corrupts bit streams.
type Channel = channel.Channel

// NewBSC returns a binary symmetric channel.
func NewBSC(p float64, seed int64) (*channel.BSC, error) { return channel.NewBSC(p, seed) }

// NewBurstChannel returns a Gilbert-Elliott bursty channel.
func NewBurstChannel(pGB, pBG, peGood, peBad float64, seed int64) (*channel.GilbertElliott, error) {
	return channel.NewGilbertElliott(pGB, pBG, peGood, peBad, seed)
}

// BPSKBitErrorProb maps Eb/N0 (dB) to the uncoded BPSK/AWGN bit-error
// probability.
func BPSKBitErrorProb(ebn0dB float64) float64 { return channel.BPSKBitErrorProb(ebn0dB) }

// ForkableChannel is a Channel that derives independent deterministic
// per-worker instances — required by concurrent pipelines, since the
// channel models themselves are not goroutine-safe.
type ForkableChannel = channel.Forker

// --- Concurrent frame pipelines ---

// Pipeline is a concurrent, batched, backpressured frame-processing
// engine: an ordered list of stages, each fanned out over a bounded
// worker pool, with output delivered strictly in submission order. See
// docs/PIPELINE.md and cmd/gfpipe.
type Pipeline = pipeline.Pipeline

// PipelineConfig sizes a pipeline (workers per stage, queue depth).
type PipelineConfig = pipeline.Config

// PipelineRun is one execution of a pipeline: Submit frames, range over
// Out, Close when done.
type PipelineRun = pipeline.Run

// Frame is one unit of work flowing through a pipeline.
type Frame = pipeline.Frame

// PipelineStage transforms frames; implementations must be safe for
// concurrent use (see StageFunc and the adapters in internal/pipeline).
type PipelineStage = pipeline.Stage

// StageFunc adapts a function to a stateless pipeline stage.
type StageFunc = pipeline.Func

// StageStats is the per-stage counter set a pipeline accumulates.
type StageStats = pipeline.StageStats

// NewPipeline builds a pipeline from stages.
func NewPipeline(cfg PipelineConfig, stages ...PipelineStage) (*Pipeline, error) {
	return pipeline.New(cfg, stages...)
}

// RSEncodeStage / RSDecodeStage wrap an RS codec (field m <= 8, one
// symbol per payload byte) as pipeline stages.
func RSEncodeStage(c *RSCode) (PipelineStage, error) { return pipeline.NewRSEncode(c) }

// RSDecodeStage is the decoding counterpart of RSEncodeStage.
func RSDecodeStage(c *RSCode) (PipelineStage, error) { return pipeline.NewRSDecode(c) }

// RSFrameEncodeStage / RSFrameDecodeStage wrap an interleaved RS frame
// codec as pipeline stages.
func RSFrameEncodeStage(iv *InterleavedRS) (PipelineStage, error) {
	return pipeline.NewRSFrameEncode(iv)
}

// RSFrameDecodeStage is the decoding counterpart of RSFrameEncodeStage.
func RSFrameDecodeStage(iv *InterleavedRS) (PipelineStage, error) {
	return pipeline.NewRSFrameDecode(iv)
}

// BCHEncodeStage / BCHDecodeStage wrap a binary BCH codec (one bit per
// payload byte) as pipeline stages.
func BCHEncodeStage(c *BCHCode) PipelineStage { return pipeline.NewBCHEncode(c) }

// BCHDecodeStage is the decoding counterpart of BCHEncodeStage.
func BCHDecodeStage(c *BCHCode) PipelineStage { return pipeline.NewBCHDecode(c) }

// SealStage / OpenStage wrap AES-GCM as pipeline stages; the per-frame
// nonce is derived from the frame sequence number.
func SealStage(g *GCM, aad []byte) PipelineStage { return pipeline.NewSealAEAD(g, aad) }

// OpenStage is the opening counterpart of SealStage.
func OpenStage(g *GCM, aad []byte) PipelineStage { return pipeline.NewOpenAEAD(g, aad) }

// CorruptStage pushes payloads through a channel model (m bits per
// payload byte), forking one deterministic channel per worker.
func CorruptStage(proto ForkableChannel, m int, seed int64) (PipelineStage, error) {
	return pipeline.NewCorrupt(proto, m, seed)
}
