// Adaptive coding: the paper's Section 1.1 motivation. An IoT node's
// channel drifts between clean and noisy; a single fixed error-correction
// code is suboptimal. This example sweeps channel quality (Eb/N0 for
// BPSK over AWGN) and, at each operating point, picks among a family of
// BCH and RS codes — exactly the flexibility the programmable GF
// processor exists to make affordable — maximizing goodput subject to a
// packet-error-rate target.
package main

import (
	"fmt"
	"log"
	"math/rand"

	gfp "repro"
)

// codec abstracts the two codec families behind one packet interface.
type codec struct {
	name string
	rate float64
	// send pushes one packet of payload bits through ch and reports
	// whether it decoded cleanly.
	send func(ch gfp.Channel, rng *rand.Rand) bool
}

func bchCodec(m, t int) codec {
	f, err := gfp.DefaultField(m)
	if err != nil {
		log.Fatal(err)
	}
	c, err := gfp.NewBCH(f, t)
	if err != nil {
		log.Fatal(err)
	}
	return codec{
		name: fmt.Sprintf("BCH(%d,%d,%d)", c.N, c.K, c.T),
		rate: c.Rate(),
		send: func(ch gfp.Channel, rng *rand.Rand) bool {
			msg := make([]byte, c.K)
			for i := range msg {
				msg[i] = byte(rng.Intn(2))
			}
			cw, err := c.Encode(msg)
			if err != nil {
				log.Fatal(err)
			}
			recv := ch.TransmitBits(cw)
			res, err := c.Decode(recv)
			if err != nil {
				return false
			}
			for i := range msg {
				if res.Message[i] != msg[i] {
					return false
				}
			}
			return true
		},
	}
}

func rsCodec(n, k int) codec {
	f, err := gfp.DefaultField(8)
	if err != nil {
		log.Fatal(err)
	}
	c, err := gfp.NewRS(f, n, k)
	if err != nil {
		log.Fatal(err)
	}
	return codec{
		name: fmt.Sprintf("RS(%d,%d,%d)", c.N, c.K, c.T),
		rate: c.Rate(),
		send: func(ch gfp.Channel, rng *rand.Rand) bool {
			msg := make([]gfp.Elem, c.K)
			for i := range msg {
				msg[i] = gfp.Elem(rng.Intn(256))
			}
			cw, err := c.Encode(msg)
			if err != nil {
				log.Fatal(err)
			}
			// Serialize symbols to bits through the channel.
			bits := make([]byte, 0, len(cw)*8)
			for _, s := range cw {
				for b := 7; b >= 0; b-- {
					bits = append(bits, byte(s>>b&1))
				}
			}
			bits = ch.TransmitBits(bits)
			recv := make([]gfp.Elem, len(cw))
			for i := range recv {
				var v gfp.Elem
				for b := 0; b < 8; b++ {
					v = v<<1 | gfp.Elem(bits[i*8+b])
				}
				recv[i] = v
			}
			res, err := c.Decode(recv)
			if err != nil {
				return false
			}
			for i := range msg {
				if res.Message[i] != msg[i] {
					return false
				}
			}
			return true
		},
	}
}

func main() {
	family := []codec{
		bchCodec(5, 1), // BCH(31,26,1): light protection, high rate
		bchCodec(5, 3), // BCH(31,16,3)
		bchCodec(5, 5), // BCH(31,11,5): the paper's heavy-duty binary code
		rsCodec(255, 239),
		rsCodec(255, 223),
	}
	const packets = 120
	const perTarget = 0.05 // packet-error-rate budget

	fmt.Println("Adaptive coding across channel conditions (BPSK over AWGN)")
	fmt.Printf("PER target %.0f%%, %d packets per (code, SNR) point\n\n", perTarget*100, packets)
	fmt.Printf("%8s %10s | ", "Eb/N0", "raw BER")
	for _, c := range family {
		fmt.Printf("%16s ", c.name)
	}
	fmt.Printf("| %s\n", "selected (best goodput under target)")

	for _, snr := range []float64{4, 5, 6, 7, 8, 9} {
		p := gfp.BPSKBitErrorProb(snr)
		fmt.Printf("%6.1fdB %10.2e | ", snr, p)
		bestIdx := -1
		bestGoodput := 0.0
		for i, c := range family {
			ch, err := gfp.NewBSC(p, int64(1000*snr)+int64(i))
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(i) + 42))
			ok := 0
			for pk := 0; pk < packets; pk++ {
				if c.send(ch, rng) {
					ok++
				}
			}
			per := 1 - float64(ok)/packets
			goodput := c.rate * float64(ok) / packets
			marker := " "
			if per <= perTarget && goodput > bestGoodput {
				bestGoodput = goodput
				bestIdx = i
			}
			fmt.Printf("%6.0f%%/%7.3f%s ", per*100, goodput, marker)
		}
		if bestIdx >= 0 {
			fmt.Printf("| %s (goodput %.3f)\n", family[bestIdx].name, bestGoodput)
		} else {
			fmt.Printf("| none meets the PER target — retreat to lower rate/distance\n")
		}
	}
	fmt.Println("\ncolumns: packet-error-rate% / goodput (information bits per channel bit)")
	fmt.Println("The optimal code changes with the channel — the flexibility case of Section 1.1.")
}
