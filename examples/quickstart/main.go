// Quickstart: the five-minute tour of the library — small-field
// arithmetic, a Reed-Solomon round trip through a noisy channel, an AES
// block, and an ECDH handshake, all through the public gfp API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	gfp "repro"
)

func main() {
	// --- 1. Galois-field arithmetic with an arbitrary polynomial ---
	f, err := gfp.NewField(8, 0x11D) // GF(2^8)/x^8+x^4+x^3+x^2+1
	if err != nil {
		log.Fatal(err)
	}
	a, b := gfp.Elem(0x57), gfp.Elem(0x83)
	fmt.Printf("in %v:  %#x * %#x = %#x,  inverse(%#x) = %#x\n",
		f, a, b, f.Mul(a, b), a, f.Inv(a))
	fmt.Printf("the hardware supports every irreducible polynomial: %d choices for m=8\n\n",
		len(gfp.IrreduciblePolys(8)))

	// --- 2. Reed-Solomon over a binary symmetric channel ---
	code, err := gfp.NewRS(f, 255, 239)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	msg := make([]byte, code.K)
	rng.Read(msg)
	cw, err := code.EncodeBytes(msg)
	if err != nil {
		log.Fatal(err)
	}
	// Corrupt up to t = 8 symbols.
	recv := append([]byte(nil), cw...)
	for _, p := range rng.Perm(code.N)[:8] {
		recv[p] ^= byte(1 + rng.Intn(255))
	}
	got, err := code.DecodeBytes(recv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v corrected 8 symbol errors: recovered=%v\n\n", code, string(got) == string(msg))

	// --- 3. AES from GF arithmetic ---
	key := []byte("an-iot-session-k")
	cipher, err := gfp.NewAES(key)
	if err != nil {
		log.Fatal(err)
	}
	pt := []byte("hello, gf world!")
	ct := make([]byte, 16)
	cipher.Encrypt(ct, pt)
	back := make([]byte, 16)
	cipher.Decrypt(back, ct)
	fmt.Printf("AES-128: %q -> %x -> %q\n\n", pt, ct, back)

	// --- 4. ECDH on the paper's K-233 curve ---
	curve := gfp.K233()
	alice, err := gfp.GenerateECDHKey(curve, rng)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := gfp.GenerateECDHKey(curve, rng)
	if err != nil {
		log.Fatal(err)
	}
	s1, err := alice.SharedSecret(bob.Pub)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := bob.SharedSecret(alice.Pub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ECDH on %v: secrets agree = %v (%d-byte secret)\n",
		curve, string(s1) == string(s2), len(s1))
}
