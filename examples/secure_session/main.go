// Secure session: the paper's Section 1.2 story end to end. Two IoT
// nodes establish a session key with ECDH on the K-233 Koblitz curve
// (asymmetric cryptography, one scalar multiplication per session), then
// exchange packets that are AES-CTR encrypted (symmetric cryptography)
// and Reed-Solomon protected (error-correction coding) across a bursty
// Gilbert-Elliott channel — all three workloads the unified GF datapath
// serves.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	gfp "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// --- Session establishment: ECDH on K-233 ---
	curve := gfp.K233()
	alice, err := gfp.GenerateECDHKey(curve, rng)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := gfp.GenerateECDHKey(curve, rng)
	if err != nil {
		log.Fatal(err)
	}
	sA, err := alice.SharedSecret(bob.Pub)
	if err != nil {
		log.Fatal(err)
	}
	sB, err := bob.SharedSecret(alice.Pub)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(sA, sB) {
		log.Fatal("ECDH secrets disagree")
	}
	sessionKey := sA[:16] // AES-128 key from the shared x-coordinate
	fmt.Printf("ECDH on %v: session key %x\n\n", curve, sessionKey)

	// --- Per-packet pipeline: AES-CTR, then RS(255,223) framing ---
	cipher, err := gfp.NewAES(sessionKey)
	if err != nil {
		log.Fatal(err)
	}
	f8, err := gfp.DefaultField(8)
	if err != nil {
		log.Fatal(err)
	}
	code, err := gfp.NewRS(f8, 255, 223) // t = 16: strong burst protection
	if err != nil {
		log.Fatal(err)
	}
	// A bursty link: rare deep fades with 30% bit errors inside the fade.
	ch, err := gfp.NewBurstChannel(0.002, 0.08, 0.0005, 0.30, 99)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("link: %s\n", ch.Description())
	fmt.Printf("framing: %v, payload %d bytes/packet\n\n", code, code.K-16)

	delivered, corrupted := 0, 0
	var totalSymbolErrors int
	const packets = 40
	for pk := 0; pk < packets; pk++ {
		// Plaintext payload (leave 16 bytes for the CTR nonce block).
		payload := make([]byte, code.K-16)
		rng.Read(payload)
		nonce := make([]byte, 16)
		rng.Read(nonce)

		// Encrypt.
		ctext := make([]byte, len(payload))
		if err := cipher.EncryptCTR(ctext, payload, nonce); err != nil {
			log.Fatal(err)
		}

		// Frame: nonce || ciphertext -> RS codeword.
		frame := append(append([]byte(nil), nonce...), ctext...)
		cw, err := code.EncodeBytes(frame)
		if err != nil {
			log.Fatal(err)
		}

		// Transmit bit-serially through the bursty channel.
		bits := make([]byte, 0, len(cw)*8)
		for _, b := range cw {
			for i := 7; i >= 0; i-- {
				bits = append(bits, b>>i&1)
			}
		}
		bits = ch.TransmitBits(bits)
		recv := make([]byte, len(cw))
		for i := range recv {
			var v byte
			for b := 0; b < 8; b++ {
				v = v<<1 | bits[i*8+b]
			}
			recv[i] = v
		}
		for i := range recv {
			if recv[i] != cw[i] {
				totalSymbolErrors++
			}
		}

		// Receive: RS decode, then AES-CTR decrypt.
		deframed, err := code.DecodeBytes(recv)
		if err != nil {
			corrupted++
			continue
		}
		rNonce, rCtext := deframed[:16], deframed[16:]
		plain := make([]byte, len(rCtext))
		if err := cipher.EncryptCTR(plain, rCtext, rNonce); err != nil {
			log.Fatal(err)
		}
		if bytes.Equal(plain, payload) {
			delivered++
		} else {
			corrupted++
		}
	}
	fmt.Printf("packets delivered intact: %d/%d (%d dropped to uncorrectable fades)\n",
		delivered, packets, corrupted)
	fmt.Printf("channel corrupted %d RS symbols in total; RS(255,223) absorbed the bursts\n",
		totalSymbolErrors)
	if delivered == 0 {
		log.Fatal("no packets survived — pipeline broken")
	}
}
