// Signed firmware update: the authentication use-case of the paper's
// asymmetric-cryptography story. A vendor signs a firmware image with
// ECDSA on K-233; an IoT node receives the image in Reed-Solomon-protected
// chunks over a noisy link (correcting channel errors on the way),
// reassembles it, and verifies the signature with the vendor's compressed
// public key before installing — every step running on GF arithmetic.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/channel"
	"repro/internal/ecc"
	"repro/internal/gf"
	"repro/internal/rs"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// --- Vendor side: sign the firmware ---
	curve := ecc.K233()
	vendor, err := ecc.GenerateKey(curve, rng)
	if err != nil {
		log.Fatal(err)
	}
	firmware := make([]byte, 2048)
	rng.Read(firmware)
	copy(firmware, "IOT-FW-v2.1.7")
	sig, err := vendor.Sign(rng, firmware)
	if err != nil {
		log.Fatal(err)
	}
	pubCompressed := curve.Compress(vendor.Pub)
	fmt.Printf("vendor key (compressed, %d bytes): %x...\n", len(pubCompressed), pubCompressed[:12])
	fmt.Printf("firmware: %d bytes, signature (r,s) = (%x..., %x...)\n\n",
		len(firmware), sig.R.Bytes()[:8], sig.S.Bytes()[:8])

	// --- Transport: RS(255,223)-protected chunks over a noisy link ---
	f8 := gf.MustDefault(8)
	code := rs.Must(f8, 255, 223)
	ch, err := channel.NewBSC(2e-3, 42)
	if err != nil {
		log.Fatal(err)
	}
	var received []byte
	chunks, corrected := 0, 0
	for off := 0; off < len(firmware); off += code.K {
		end := off + code.K
		if end > len(firmware) {
			end = len(firmware)
		}
		chunk := make([]byte, code.K) // zero-padded tail chunk
		copy(chunk, firmware[off:end])
		cw, err := code.EncodeBytes(chunk)
		if err != nil {
			log.Fatal(err)
		}
		// Bit-serial transmission.
		bits := make([]byte, 0, len(cw)*8)
		for _, b := range cw {
			for i := 7; i >= 0; i-- {
				bits = append(bits, b>>i&1)
			}
		}
		bits = ch.TransmitBits(bits)
		recv := make([]byte, len(cw))
		for i := range recv {
			var v byte
			for b := 0; b < 8; b++ {
				v = v<<1 | bits[i*8+b]
			}
			recv[i] = v
		}
		sym := make([]gf.Elem, len(recv))
		for i, b := range recv {
			sym[i] = gf.Elem(b)
		}
		res, err := code.Decode(sym)
		if err != nil {
			log.Fatalf("chunk %d uncorrectable: %v", chunks, err)
		}
		out := make([]byte, end-off)
		for i := range out {
			out[i] = byte(res.Message[i])
		}
		received = append(received, out...)
		corrected += res.NumErrors
		chunks++
	}
	fmt.Printf("transport: %d chunks, %d symbol errors corrected by %v\n",
		chunks, corrected, code)
	if !bytes.Equal(received, firmware) {
		log.Fatal("firmware corrupted in transit despite RS (should not happen at this BER)")
	}

	// --- Node side: decompress the key, verify the signature ---
	pub, err := curve.Decompress(pubCompressed)
	if err != nil {
		log.Fatal(err)
	}
	if ecc.Verify(curve, pub, received, sig) {
		fmt.Println("signature VALID — firmware accepted for installation")
	} else {
		log.Fatal("signature INVALID — firmware rejected")
	}

	// Tampering is caught: flip one byte and re-verify.
	tampered := append([]byte(nil), received...)
	tampered[1000] ^= 0x01
	if ecc.Verify(curve, pub, tampered, sig) {
		log.Fatal("tampered firmware accepted!")
	}
	fmt.Println("tampered image correctly rejected")
}
