// Processor: assembles and runs real GF-processor programs on the
// cycle-accurate simulator. It reproduces Table 6's point in miniature —
// the same syndrome inner loop written twice, once with log/antilog
// tables for the baseline profile and once with the Table-1 SIMD GF
// instructions — and prints the measured cycle counts side by side.
package main

import (
	"fmt"
	"log"

	gfp "repro"
)

// The received word: a valid RS(15,9) codeword over GF(2^4)/x^4+x+1 with
// two injected symbol errors. Small enough to read, real enough to decode.
var recv = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 5, 3, 14, 2, 11}

// baselineSrc computes syndrome S_1 = r(alpha) the M0+ way (Table 6,
// left): log/antilog table lookups, integer add, modulo, xor.
const baselineSrc = `
	movi r1, =recv
	movi r2, #0          ; sum
	movi r3, #0          ; j
	movi r4, =logtab
	movi r5, =exptab
	movi r6, #15         ; field size - 1
	movi r7, #1          ; syndrome index i
loop:
	cmpi r2, #0
	beq  skipmul
	ldrbr r8, [r4, r2]   ; sumIdx = BIN2Idx[sum]
	add  r8, r8, r7      ; sumIdx += i
	cmp  r8, r6
	blt  nomod
	sub  r8, r8, r6      ; ... % field size
nomod:
	ldrbr r2, [r5, r8]   ; sum = Idx2BIN[sumIdx]
skipmul:
	ldrbr r9, [r1, r3]
	eor  r2, r2, r9      ; sum ^= R[j]
	addi r3, r3, #1
	cmpi r3, #15
	blt  loop
	halt
.data
logtab:  .byte 0, 0, 1, 4, 2, 8, 5, 10, 3, 14, 9, 7, 6, 13, 11, 12
exptab:  .byte 1, 2, 4, 8, 3, 6, 12, 11, 5, 10, 7, 14, 15, 13, 9
recv:    .byte 1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 5, 3, 14, 2, 11
`

// simdSrc computes S_1..S_4 together with the GF instructions (Table 6,
// right): the whole log-domain dance becomes gfmul + gfadd.
const simdSrc = `
	movi r10, =field
	gfconf r10
	movi r1, =recv
	movi r2, #0          ; 4 packed sums
	movi r3, #0          ; j
	movi r4, #0x0402
	movhi r4, #0x0308    ; lanes: alpha^1=2, alpha^2=4, alpha^3=8, alpha^4=3
	movi r5, #0x0101
	movhi r5, #0x0101    ; lane splat constant
loop:
	gfmul r2, r2, r4     ; sums *= alpha^i  (four lanes at once)
	ldrbr r6, [r1, r3]
	mul  r6, r6, r5      ; splat R[j]
	gfadd r2, r2, r6     ; sums += R[j]
	addi r3, r3, #1
	cmpi r3, #15
	blt  loop
	halt
.data
field:   .word 0x13
recv:    .byte 1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 5, 3, 14, 2, 11
`

func main() {
	f, err := gfp.NewField(4, 0x13)
	if err != nil {
		log.Fatal(err)
	}
	// Reference syndromes from the library.
	code, err := gfp.NewRS(f, 15, 9)
	if err != nil {
		log.Fatal(err)
	}
	word := make([]gfp.Elem, len(recv))
	for i, v := range recv {
		word[i] = gfp.Elem(v)
	}
	want := code.Syndromes(word)

	// Baseline: one syndrome per pass on the scalar profile.
	prog, err := gfp.Assemble(baselineSrc)
	if err != nil {
		log.Fatal(err)
	}
	base, err := gfp.NewProcessor(prog, gfp.ProcessorConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := base.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (M0+ profile):  S_1 = %#x  in %d cycles (%d instructions)\n",
		base.Reg(2), base.Cycles(), base.Instructions())
	if gfp.Elem(base.Reg(2)) != want[0] {
		log.Fatalf("baseline syndrome wrong: want %#x", want[0])
	}

	// GF processor: four syndromes in one pass.
	prog2, err := gfp.Assemble(simdSrc)
	if err != nil {
		log.Fatal(err)
	}
	proc, err := gfp.NewProcessor(prog2, gfp.ProcessorConfig{GFUnit: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := proc.Run(0); err != nil {
		log.Fatal(err)
	}
	packed := proc.Reg(2)
	fmt.Printf("GF processor (SIMD):     S_1..S_4 = %#02x %#02x %#02x %#02x  in %d cycles (%d instructions)\n",
		packed&0xFF, packed>>8&0xFF, packed>>16&0xFF, packed>>24&0xFF,
		proc.Cycles(), proc.Instructions())
	for l := 0; l < 4; l++ {
		if gfp.Elem(packed>>(8*l)&0xFF) != want[l] {
			log.Fatalf("SIMD lane %d wrong: got %#x want %#x", l, packed>>(8*l)&0xFF, want[l])
		}
	}
	speedup := 4 * float64(base.Cycles()) / float64(proc.Cycles())
	fmt.Printf("\nper-syndrome speedup: %.1fx (4 baseline passes vs 1 SIMD pass)\n", speedup)

	st := proc.GFUnit().Stats()
	fmt.Printf("GF unit activity: %d GF instructions, %d multiplier uses, %d square uses\n",
		st.Instructions, st.MultUses, st.SquareUses)
	fmt.Printf("GF unit busy %d of %d cycles; idle cycles are data-gated (paper: 77%% dynamic saving)\n",
		proc.GFBusyCycles(), proc.Cycles())
}
