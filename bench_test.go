package gfp

// One benchmark per table and figure of the paper's evaluation section.
// Each bench regenerates its experiment and reports the headline numbers
// as custom metrics (modeled cycles and speedups), so `go test -bench .`
// doubles as the reproduction harness; cmd/paperbench prints the same
// data as formatted tables.

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/aes"
	"repro/internal/bch"
	"repro/internal/ecc"
	"repro/internal/gf"
	"repro/internal/gfbig"
	"repro/internal/hwmodel"
	"repro/internal/kernels"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/programs"
	"repro/internal/rs"
)

func rsTestWord(seed int64, nerr int) (*rs.Code, []gf.Elem) {
	f := gf.MustDefault(8)
	c := rs.Must(f, 255, 239)
	rng := rand.New(rand.NewSource(seed))
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	cw, err := c.Encode(msg)
	if err != nil {
		panic(err)
	}
	for _, p := range rng.Perm(c.N)[:nerr] {
		cw[p] ^= gf.Elem(1 + rng.Intn(255))
	}
	return c, cw
}

// --- Table 2: multiplier resource comparison ---

func BenchmarkTable2MultiplierResources(b *testing.B) {
	var sys, cmp float64
	for i := 0; i < b.N; i++ {
		sys = hwmodel.SystolicMultiplier(8).Total
		cmp = hwmodel.CompactMultiplier(8).Total
	}
	b.ReportMetric(sys, "systolic-gates")
	b.ReportMetric(cmp, "thiswork-gates")
	b.ReportMetric(sys/cmp, "area-ratio")
}

// --- Table 3: primitive units ---

func BenchmarkTable3PrimitiveComparison(b *testing.B) {
	// The functional content of Table 3: a square primitive is ~3x smaller
	// than a multiplier. Also measure the software model's relative speed.
	f := gf.MustDefault(8)
	var x gf.Elem = 0x57
	for i := 0; i < b.N; i++ {
		x = f.SqrNoTable(x) | 1
	}
	b.ReportMetric(hwmodel.MultUnitAreaUm2/hwmodel.SquareUnitAreaUm2, "mult/sq-area-ratio")
	b.ReportMetric(float64(hwmodel.NumMultUnits), "mult-units")
	b.ReportMetric(float64(hwmodel.NumSquareUnits), "square-units")
}

// --- Table 4: inverse resource comparison ---

func BenchmarkTable4InverseResources(b *testing.B) {
	var sys, ita float64
	for i := 0; i < b.N; i++ {
		sys = hwmodel.SystolicEuclidInverse(8).Total
		ita = hwmodel.ITAInverse(8).Total
	}
	b.ReportMetric(sys, "systolic-gates")
	b.ReportMetric(ita, "ita-gates")
	b.ReportMetric(sys/ita, "area-ratio")
}

// --- Table 6: syndrome inner loop on the real simulator ---

func BenchmarkTable6SyndromeInnerLoop(b *testing.B) {
	c, recv := rsTestWord(11, 6)
	var baseCycles, simdCycles int64
	for i := 0; i < b.N; i++ {
		baseCycles = 0
		for idx := 1; idx <= 4; idx++ {
			res, _, _, err := programs.Run(programs.SyndromeBaseline(c.F, recv, idx), false)
			if err != nil {
				b.Fatal(err)
			}
			baseCycles += res.Cycles
		}
		res, _, _, err := programs.Run(programs.SyndromeSIMD(c.F, recv, 1), true)
		if err != nil {
			b.Fatal(err)
		}
		simdCycles = res.Cycles
	}
	b.ReportMetric(float64(baseCycles), "m0-cycles")
	b.ReportMetric(float64(simdCycles), "gfproc-cycles")
	b.ReportMetric(float64(baseCycles)/float64(simdCycles), "speedup")
}

// --- Table 7: GF(2^233) mult/square cycle breakdown ---

func BenchmarkTable7WideMultCycles(b *testing.B) {
	f := gfbig.F233()
	var ph kernels.Table7Phases
	for i := 0; i < b.N; i++ {
		ph = kernels.MeasureTable7(f)
	}
	b.ReportMetric(float64(ph.MulTotal), "mult-cycles(paper:599)")
	b.ReportMetric(float64(ph.SqrTotal), "sqr-cycles(paper:136)")
	b.ReportMetric(float64(ph.GF32PerMul), "gf32-per-mult(paper:64)")
}

// --- Table 8: wide-field primitives vs prior art ---

func BenchmarkTable8WideFieldVsPriorArt(b *testing.B) {
	c := ecc.K233()
	var gfp kernels.WideFieldBreakdown
	for i := 0; i < b.N; i++ {
		gfp = kernels.MeasureWideField(c, kernels.GFProc)
	}
	b.ReportMetric(float64(gfp.Mul), "mult-cycles(paper:599)")
	b.ReportMetric(float64(gfp.Sqr), "sqr-cycles(paper:136)")
	b.ReportMetric(3672/float64(gfp.Mul), "mult-speedup-vs-clercq(paper:6.1)")
}

// --- Table 9: point operations ---

func BenchmarkTable9PointOperations(b *testing.B) {
	c := ecc.K233()
	var bd kernels.WideFieldBreakdown
	for i := 0; i < b.N; i++ {
		bd = kernels.MeasureWideField(c, kernels.GFProc)
	}
	b.ReportMetric(float64(bd.PointAdd), "point-add-cycles(paper:6742)")
	b.ReportMetric(float64(bd.PointDbl), "point-double-cycles(paper:3499)")
	b.ReportMetric(float64(bd.Inv), "inverse-cycles(paper:39972)")
}

// --- Fig. 9: decoder speedups ---

func BenchmarkFig9DecoderSpeedup(b *testing.B) {
	c, recv := rsTestWord(22, 8)
	code := bch.Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(23))
	msg := make([]byte, code.K)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	cwb, _ := code.Encode(msg)
	for _, p := range rng.Perm(code.N)[:5] {
		cwb[p] ^= 1
	}
	var rsBd, bchBd *kernels.DecoderBreakdown
	for i := 0; i < b.N; i++ {
		var err error
		rsBd, _, err = kernels.DecodeRS(c, recv)
		if err != nil {
			b.Fatal(err)
		}
		bchBd, _, err = kernels.DecodeBCH(code, cwb)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rsBd.Syndrome.Speedup(), "rs-syndrome-speedup(paper:>20)")
	b.ReportMetric(rsBd.BMA.Speedup(), "rs-bma-speedup(least)")
	b.ReportMetric(rsBd.Forney.Speedup(), "rs-forney-speedup(paper:>10)")
	b.ReportMetric(rsBd.Overall.Speedup(), "rs-overall-speedup(paper:>10)")
	b.ReportMetric(bchBd.Overall.Speedup(), "bch-overall-speedup")
}

// --- Fig. 10: AES speedups ---

func BenchmarkFig10AESSpeedup(b *testing.B) {
	key := make([]byte, 16)
	pt := make([]byte, 16)
	var bd *kernels.AESBreakdown
	for i := 0; i < b.N; i++ {
		var err error
		bd, err = kernels.AESKernels(key, pt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bd.SBox.Speedup(), "sbox-speedup")
	b.ReportMetric(bd.MixCol.Speedup(), "mixcol-speedup(paper:>10)")
	b.ReportMetric(bd.InvMixCol.Speedup(), "invmixcol-speedup(paper:~20)")
	b.ReportMetric(bd.Encrypt.Speedup(), "enc-speedup(paper:>5)")
	b.ReportMetric(bd.Decrypt.Speedup(), "dec-speedup(paper:>10)")
}

// --- Section 3.3.4: scalar multiplication latency ---

func BenchmarkScalarMultCycles(b *testing.B) {
	c := ecc.K233()
	k := ecc.PaperScalar()
	var tr kernels.ScalarMultTrace
	for i := 0; i < b.N; i++ {
		var m perf.Meter
		tr = kernels.ScalarMult(c, k, c.Generator(), kernels.GFProc, 0, &m)
	}
	b.ReportMetric(float64(tr.MainCycles), "main-cycles(paper:617120)")
	b.ReportMetric(float64(tr.SupportCycles), "support-cycles(paper:157442)")
	b.ReportMetric(float64(tr.MainCycles+tr.SupportCycles)/1e5, "ms-at-100MHz(paper:7.75)")
}

// --- Section 3.3.4: Karatsuba optimization ---

func BenchmarkKaratsubaSpeedup(b *testing.B) {
	c := ecc.K233()
	var bd kernels.WideFieldBreakdown
	for i := 0; i < b.N; i++ {
		bd = kernels.MeasureWideField(c, kernels.GFProc)
	}
	b.ReportMetric(float64(bd.Mul)/float64(bd.MulKaratsuba), "karatsuba-speedup(paper:1.4)")
}

// --- Tables 10-13 and voltage scaling ---

func BenchmarkTable10GFUnitArea(b *testing.B) {
	var t hwmodel.GFUnitBreakdown
	for i := 0; i < b.N; i++ {
		t = hwmodel.Table10()
	}
	b.ReportMetric(t.TotalAreaUm2, "um2(paper:5760)")
	b.ReportMetric(t.CritPathNs, "crit-ns(paper:2.91)")
}

func BenchmarkTable11ProcessorArea(b *testing.B) {
	var p hwmodel.Processor
	for i := 0; i < b.N; i++ {
		p = hwmodel.Table11()
	}
	b.ReportMetric(p.TotalArea, "um2(paper:10272)")
	b.ReportMetric(p.TotalPower, "uW(paper:431)")
}

func BenchmarkTable12AESAreaComparison(b *testing.B) {
	var c hwmodel.AESAreaComparison
	for i := 0; i < b.N; i++ {
		c = hwmodel.Table12()
	}
	b.ReportMetric(100*c.ExtraAreaFrac, "extra-area-pct(paper:63.5)")
}

func BenchmarkTable13AESEnergy(b *testing.B) {
	key := make([]byte, 16)
	pt := make([]byte, 16)
	bd, err := kernels.AESKernels(key, pt)
	if err != nil {
		b.Fatal(err)
	}
	var rows []hwmodel.AESEnergy
	for i := 0; i < b.N; i++ {
		rows = hwmodel.Table13(bd.Encrypt.GFProc)
	}
	b.ReportMetric(rows[1].ThroughputMbps, "tput-Mbps(paper:12.2)")
	b.ReportMetric(rows[1].EnergyPJPerBit, "pJ-per-bit(paper:35.5)")
	b.ReportMetric(rows[1].EnergyPJPerBit/rows[0].EnergyPJPerBit, "vs-asic(paper:~6)")
}

// --- Ablations ---

func BenchmarkAblationSIMDWidth(b *testing.B) {
	// Syndrome kernel cycles as SIMD width scales 1/2/4/8 — the paper's
	// argument that 4 lanes saturate the application parallelism.
	c, recv := rsTestWord(33, 8)
	cycles := map[int]int64{}
	for i := 0; i < b.N; i++ {
		for _, lanes := range []int{1, 2, 4, 8} {
			twoT := 2 * c.T
			nv := (twoT + lanes - 1) / lanes
			var m perf.Meter
			m.Alu(int64(2 * nv))
			for j := 0; j < len(recv); j++ {
				m.Load(1)
				m.Alu(1)
				m.IMul(1)
				m.GF(int64(2 * nv))
				m.Alu(2)
				m.Taken(1)
			}
			cycles[lanes] = m.Cycles(perf.GFProcessor())
		}
	}
	b.ReportMetric(float64(cycles[1]), "1-lane-cycles")
	b.ReportMetric(float64(cycles[4]), "4-lane-cycles")
	b.ReportMetric(float64(cycles[4])/float64(cycles[8]), "4to8-gain(small)")
}

func BenchmarkAblationKaratsubaDepth(b *testing.B) {
	c := ecc.K233()
	a := c.F.FromUint64(0x123456789ABCDEF)
	cycles := map[int]int64{}
	for i := 0; i < b.N; i++ {
		for lv := 0; lv <= 3; lv++ {
			var m perf.Meter
			o := &kernels.WideOps{F: c.F, Mach: kernels.GFProc, M: &m, Karatsuba: lv}
			o.Mul(a, c.Gx)
			cycles[lv] = m.Cycles(perf.GFProcessor())
		}
	}
	for lv := 0; lv <= 3; lv++ {
		b.ReportMetric(float64(cycles[lv]), []string{"direct", "1-level", "2-level", "3-level"}[lv]+"-cycles")
	}
}

func BenchmarkAblationInverseMethods(b *testing.B) {
	// ITA vs extended Euclid vs Fermat on the software model (the three
	// candidate microarchitectures of Section 2.4.3 / Table 4).
	f := gf.AES()
	b.Run("ITA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.InvITA(gf.Elem(i%255 + 1))
		}
	})
	b.Run("Euclid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.InvEuclid(gf.Elem(i%255 + 1))
		}
	})
	b.Run("Fermat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.InvFermat(gf.Elem(i%255 + 1))
		}
	})
	b.Run("LogTable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Inv(gf.Elem(i%255 + 1))
		}
	})
}

// --- Genuine library throughput benchmarks (host performance) ---

func BenchmarkGFMulTable(b *testing.B) {
	f := gf.MustDefault(8)
	var x gf.Elem = 1
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, 0x57) | 1
	}
}

// BenchmarkGFKernelMulConstAddSlice measures the flat-table GF(2^8)
// multiply-accumulate kernel — the workhorse of encode, BMA and Forney.
func BenchmarkGFKernelMulConstAddSlice(b *testing.B) {
	k := gf.MustDefault(8).Kernels()
	src := make([]gf.Elem, 4096)
	acc := make([]gf.Elem, 4096)
	for i := range src {
		src[i] = gf.Elem((i*13 + 1) & 0xFF)
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.MulConstAddSlice(acc, src, gf.Elem(i%255+1))
	}
}

// BenchmarkGFKernelSyndromeSlice measures the interleaved multi-point
// Horner kernel at RS(255,223) shape (32 evaluation points, 255 symbols).
func BenchmarkGFKernelSyndromeSlice(b *testing.B) {
	f := gf.MustDefault(8)
	k := f.Kernels()
	word := make([]gf.Elem, 255)
	for i := range word {
		word[i] = gf.Elem((i*31 + 5) & 0xFF)
	}
	roots := make([]gf.Elem, 32)
	for i := range roots {
		roots[i] = f.AlphaPow(i + 1)
	}
	dst := make([]gf.Elem, len(roots))
	b.SetBytes(int64(len(word)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.SyndromeSlice(dst, word, roots)
	}
}

// --- Kernel tier A/B: the same hot codec loops forced onto each GF
// kernel tier (internal/gf/tier.go). The auto row is the calibrated
// per-(op, length) dispatch; the other rows pin the process-wide tier
// exactly as GFP_KERNEL_TIER / -kernel-tier would, so the BENCH json
// records where each tier wins and that auto tracks the winner. ---

// benchPerTier runs fn once per tier as a sub-benchmark named after the
// tier, forcing the process-wide tier for its duration.
func benchPerTier(b *testing.B, fn func(b *testing.B)) {
	defer gf.ForceKernelTier(gf.TierAuto)
	for _, tier := range []gf.TierID{
		gf.TierAuto, gf.TierScalar, gf.TierTable, gf.TierBitsliced, gf.TierCLMul,
	} {
		b.Run(tier.String(), func(b *testing.B) {
			gf.ForceKernelTier(tier)
			b.ResetTimer()
			fn(b)
		})
	}
}

// BenchmarkGFTierRSEncode255_223 drives the LFSR encode bank (MulConst /
// MulConstAdd shape) per tier at the CCSDS RS(255,223) geometry.
func BenchmarkGFTierRSEncode255_223(b *testing.B) {
	c := rs.Must(gf.MustDefault(8), 255, 223)
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem((i*11 + 3) & 0xFF)
	}
	dst := make([]gf.Elem, c.N)
	benchPerTier(b, func(b *testing.B) {
		b.SetBytes(int64(c.K))
		for i := 0; i < b.N; i++ {
			if _, err := c.EncodeTo(dst, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGFTierRSSyndromes255_223 drives the 32-point symbol-wise
// syndrome kernel per tier over a full received word.
func BenchmarkGFTierRSSyndromes255_223(b *testing.B) {
	c := rs.Must(gf.MustDefault(8), 255, 223)
	recv := make([]gf.Elem, c.N)
	for i := range recv {
		recv[i] = gf.Elem((i*29 + 7) & 0xFF)
	}
	dst := make([]gf.Elem, 2*c.T)
	benchPerTier(b, func(b *testing.B) {
		b.SetBytes(int64(c.N))
		for i := 0; i < b.N; i++ {
			c.SyndromesTo(dst, recv)
		}
	})
}

// BenchmarkGFTierBCHSyndromes255 drives the binary-word syndrome path
// per tier on a long BCH code over GF(2^8): n = 255 bits through the
// code's BitSyndromePlan, where the clmul minimal-polynomial fold is the
// headline win over the table tier's bit-Horner.
func BenchmarkGFTierBCHSyndromes255(b *testing.B) {
	code := bch.Must(gf.MustDefault(8), 16)
	rng := rand.New(rand.NewSource(88))
	recv := make([]byte, code.N)
	for i := range recv {
		recv[i] = byte(rng.Intn(2))
	}
	dst := make([]gf.Elem, 2*code.T)
	benchPerTier(b, func(b *testing.B) {
		b.SetBytes(int64(code.N))
		for i := 0; i < b.N; i++ {
			code.SyndromesTo(dst, recv)
		}
	})
}

func BenchmarkGFMulHardwarePath(b *testing.B) {
	f := gf.MustDefault(8)
	var x gf.Elem = 1
	for i := 0; i < b.N; i++ {
		x = f.MulNoTable(x, 0x57) | 1
	}
}

func BenchmarkRSEncode255_239(b *testing.B) {
	c := rs.Must(gf.MustDefault(8), 255, 239)
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem(i & 0xFF)
	}
	dst := make([]gf.Elem, c.N)
	b.SetBytes(int64(c.K))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeTo(dst, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSEncode255_239Alloc keeps the allocating Encode path measured
// so a regression in the codeword-per-call allocation shows up next to
// the zero-alloc EncodeTo number above.
func BenchmarkRSEncode255_239Alloc(b *testing.B) {
	c := rs.Must(gf.MustDefault(8), 255, 239)
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem(i & 0xFF)
	}
	b.SetBytes(int64(c.K))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSEncode255_223 exercises the buffer-reusing bulk encode path
// (gf.LFSR feedback bank) on the classic CCSDS shape.
func BenchmarkRSEncode255_223(b *testing.B) {
	c := rs.Must(gf.MustDefault(8), 255, 223)
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem((i*11 + 3) & 0xFF)
	}
	dst := make([]gf.Elem, c.N)
	b.SetBytes(int64(c.K))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeTo(dst, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSSyndromes255_223 exercises the 4-way batched Horner
// syndrome kernel over a full received word.
func BenchmarkRSSyndromes255_223(b *testing.B) {
	c := rs.Must(gf.MustDefault(8), 255, 223)
	recv := make([]gf.Elem, c.N)
	for i := range recv {
		recv[i] = gf.Elem((i*29 + 7) & 0xFF)
	}
	dst := make([]gf.Elem, 2*c.T)
	b.SetBytes(int64(c.N))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SyndromesTo(dst, recv)
	}
}

func BenchmarkRSDecode255_239_8errors(b *testing.B) {
	c, recv := rsTestWord(44, 8)
	b.SetBytes(int64(c.K))
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(recv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBCHDecode31_11_5(b *testing.B) {
	code := bch.Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(55))
	msg := make([]byte, code.K)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	cw, _ := code.Encode(msg)
	for _, p := range rng.Perm(code.N)[:5] {
		cw[p] ^= 1
	}
	for i := 0; i < b.N; i++ {
		if _, err := code.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAESEncryptGo(b *testing.B) {
	c, _ := aes.NewCipher(make([]byte, 16))
	blk := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(blk, blk)
	}
}

func BenchmarkWideMulF233(b *testing.B) {
	f := gfbig.F233()
	x := f.FromUint64(0xDEADBEEF)
	y := f.Copy(f.FromUint64(0xCAFEF00D))
	for i := range y {
		y[i] ^= uint32(i * 0x9E3779B9)
	}
	y[len(y)-1] &= 1<<(233%32) - 1
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y)
	}
}

func BenchmarkWideMulF233Karatsuba(b *testing.B) {
	f := gfbig.F233()
	x := f.FromUint64(0xDEADBEEF)
	y := f.FromUint64(0xCAFEF00D)
	for i := 0; i < b.N; i++ {
		x = f.MulKaratsuba(x, y)
	}
}

func BenchmarkScalarMultK233Go(b *testing.B) {
	c := ecc.K233()
	k := ecc.PaperScalar()
	for i := 0; i < b.N; i++ {
		c.ScalarBaseMult(k)
	}
}

func BenchmarkSimulatorMIPS(b *testing.B) {
	// Raw simulator speed: instructions simulated per second.
	c, recv := rsTestWord(66, 4)
	src := programs.SyndromeSIMD(c.F, recv, 1)
	var insts int64
	for i := 0; i < b.N; i++ {
		res, _, _, err := programs.Run(src, true)
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Instructions
	}
	b.ReportMetric(float64(insts), "insts/run")
}

// --- Extension features ---

func BenchmarkAblationWNAFWidth(b *testing.B) {
	// Group-operation counts per scalar-mult method (paper ref [30]).
	c := ecc.K233()
	rng := rand.New(rand.NewSource(77))
	k := new(big.Int).Rand(rng, c.Order)
	var adds2, adds5 int
	for i := 0; i < b.N; i++ {
		_, st2 := c.ScalarMultWNAFStats(k, c.Generator(), 2)
		_, st5 := c.ScalarMultWNAFStats(k, c.Generator(), 5)
		adds2 = st2.Adds + st2.Precomp
		adds5 = st5.Adds + st5.Precomp
	}
	b.ReportMetric(float64(adds2), "w2-adds")
	b.ReportMetric(float64(adds5), "w5-adds")
}

func BenchmarkGCMSeal(b *testing.B) {
	c, _ := aes.NewCipher(make([]byte, 16))
	g := c.NewGCM()
	nonce := make([]byte, 12)
	pt := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		if _, err := g.Seal(nonce, pt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWideMulF233Comb(b *testing.B) {
	f := gfbig.F233()
	x := f.FromUint64(0xDEADBEEF)
	y := f.FromUint64(0xCAFEF00D)
	for i := 0; i < b.N; i++ {
		x = f.MulComb(x, y)
	}
}

func BenchmarkECDSASignVerify(b *testing.B) {
	c := ecc.K233()
	rng := rand.New(rand.NewSource(88))
	key, err := ecc.GenerateKey(c, rng)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("benchmark message")
	b.Run("Sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := key.Sign(rng, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	sig, _ := key.Sign(rng, msg)
	b.Run("Verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !ecc.Verify(c, key.Pub, msg, sig) {
				b.Fatal("invalid")
			}
		}
	})
}

func BenchmarkAESBlockOnSimulator(b *testing.B) {
	key := make([]byte, 16)
	pt := make([]byte, 16)
	src, err := programs.AESEncryptBlock(key, pt)
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, _, _, err := programs.Run(src, true)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles(model:~550)")
}

// --- Pipeline throughput: frames/s scaling across worker counts ---

// benchmarkPipelineRS drives encode -> corrupt -> decode over one shared
// RS(255,239) codec with the given per-stage worker count and codewords
// per frame, reporting message-payload MB/s via SetBytes. Corruption is
// derived from the frame sequence number and chunk index (8 symbol
// errors per codeword, the code's capability), so every configuration
// decodes an identical workload.
func benchmarkPipelineRS(b *testing.B, workers, batch int) {
	c := rs.Must(gf.MustDefault(8), 255, 239)
	enc, err := pipeline.NewRSEncode(c)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := pipeline.NewRSDecode(c)
	if err != nil {
		b.Fatal(err)
	}
	flip := pipeline.Func{Label: "flip(8)", F: func(f *pipeline.Frame) error {
		for w := 0; w < len(f.Data)/c.N; w++ {
			cw := f.Data[w*c.N : (w+1)*c.N]
			key := f.Seq*uint64(batch) + uint64(w)
			for i := 0; i < 8; i++ {
				cw[(int(key)%31+i*31)%c.N] ^= byte(1 + (key+uint64(i))%255)
			}
		}
		return nil
	}}
	p, err := pipeline.New(pipeline.Config{Workers: workers, Batch: batch}, enc, flip, dec)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, batch*c.K)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	b.SetBytes(int64(batch * c.K))
	b.ResetTimer()
	r := p.Start()
	failed := make(chan int)
	go func() {
		bad := 0
		for f := range r.Out() {
			if f.Err != nil {
				bad++
			}
			f.Free()
		}
		failed <- bad
	}()
	for i := 0; i < b.N; i++ {
		r.Submit(payload)
	}
	r.Close()
	if bad := <-failed; bad > 0 {
		b.Fatalf("%d frames failed", bad)
	}
}

// BenchmarkPipelineRS255_239 contrasts a fully serialized pipeline
// (1 worker per stage) with one sized to the host (GOMAXPROCS workers
// per stage); on a multi-core machine the latter should scale decode
// throughput near-linearly until memory bandwidth intervenes. Each
// variant runs unbatched and with 16 codewords per frame — batching
// amortizes the per-frame handoff cost that otherwise dominates small
// codewords.
func BenchmarkPipelineRS255_239(b *testing.B) {
	for _, batch := range []int{1, 16} {
		suffix := ""
		if batch > 1 {
			suffix = fmt.Sprintf("/batch=%d", batch)
		}
		b.Run("workers=1"+suffix, func(b *testing.B) { benchmarkPipelineRS(b, 1, batch) })
		if w := runtime.GOMAXPROCS(0); w > 1 {
			b.Run(fmt.Sprintf("workers=%d%s", w, suffix), func(b *testing.B) { benchmarkPipelineRS(b, w, batch) })
		} else {
			b.Run("workers=4"+suffix, func(b *testing.B) { benchmarkPipelineRS(b, 4, batch) })
		}
	}
}
