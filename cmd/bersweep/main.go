// Command bersweep generates coded-link performance curves: packet error
// rate, residual BER and goodput versus Eb/N0 for a family of BCH and RS
// codes over BPSK/AWGN — the quantitative backdrop of the paper's
// Section 1.1 coding-flexibility argument.
//
// Usage:
//
//	bersweep [-from 3] [-to 9] [-step 1] [-packets 200] [-seed 1] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bch"
	"repro/internal/gf"
	"repro/internal/rs"
	"repro/internal/sweep"
)

func main() {
	from := flag.Float64("from", 3, "lowest Eb/N0 (dB)")
	to := flag.Float64("to", 9, "highest Eb/N0 (dB)")
	step := flag.Float64("step", 1, "Eb/N0 step (dB)")
	packets := flag.Int("packets", 200, "packets per point")
	seed := flag.Int64("seed", 1, "rng seed")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	flag.Parse()
	if *step <= 0 || *to < *from {
		fmt.Fprintln(os.Stderr, "bersweep: bad sweep range")
		os.Exit(2)
	}
	var snrs []float64
	for s := *from; s <= *to+1e-9; s += *step {
		snrs = append(snrs, s)
	}

	f5 := gf.MustDefault(5)
	f8 := gf.MustDefault(8)
	codecs := []sweep.Codec{
		sweep.BCHCodec{Code: bch.Must(f5, 1)}, // BCH(31,26,1)
		sweep.BCHCodec{Code: bch.Must(f5, 3)}, // BCH(31,16,3)
		sweep.BCHCodec{Code: bch.Must(f5, 5)}, // BCH(31,11,5)
		sweep.RSCodec{Code: rs.Must(f8, 255, 239)},
		sweep.RSCodec{Code: rs.Must(f8, 255, 223)},
	}

	if *csv {
		fmt.Println("code,ebn0_db,raw_ber,observed_ber,residual_ber,per,goodput")
	}
	for _, c := range codecs {
		pts, err := sweep.Run(c, snrs, *packets, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bersweep:", err)
			os.Exit(1)
		}
		if *csv {
			for _, p := range pts {
				fmt.Printf("%s,%.2f,%.3e,%.3e,%.3e,%.4f,%.4f\n",
					c.Name(), p.EbN0dB, p.RawBER, p.ObservedBER, p.ResidualBER, p.PER, p.Goodput)
			}
			continue
		}
		fmt.Printf("\n%s (rate %.3f)\n", c.Name(), c.Rate())
		fmt.Printf("%8s %12s %12s %12s %8s %8s\n", "Eb/N0", "raw BER", "chan BER", "resid BER", "PER", "goodput")
		for _, p := range pts {
			fmt.Printf("%6.1fdB %12.3e %12.3e %12.3e %7.1f%% %8.3f\n",
				p.EbN0dB, p.RawBER, p.ObservedBER, p.ResidualBER, 100*p.PER, p.Goodput)
		}
	}
}
