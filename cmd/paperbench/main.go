// Command paperbench regenerates every table and figure of the paper's
// evaluation section (Section 3) from this repository's models, printing
// paper-reported values next to measured ones.
//
// Usage:
//
//	paperbench            # everything
//	paperbench -t fig9    # one experiment
//	paperbench -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/bch"
	"repro/internal/ecc"
	"repro/internal/gf"
	"repro/internal/gfbig"
	"repro/internal/hwmodel"
	"repro/internal/kernels"
	"repro/internal/netlist"
	"repro/internal/perf"
	"repro/internal/programs"
	"repro/internal/rs"
)

var experiments = map[string]func(){
	"table2":     table2,
	"table3":     table3,
	"table4":     table4,
	"table6":     table6,
	"table7":     table7,
	"table8":     table8,
	"table9":     table9,
	"fig9":       fig9,
	"encoders":   encoders,
	"gcm":        gcm,
	"fullsim":    fullsim,
	"fig10":      fig10,
	"scalarmult": scalarmult,
	"karatsuba":  karatsuba,
	"table10":    table10,
	"table11":    table11,
	"table12":    table12,
	"table13":    table13,
	"vscale":     vscale,
	"ablations":  ablations,
}

var order = []string{
	"table2", "table3", "table4", "table6", "table7", "table8", "table9",
	"fig9", "encoders", "fig10", "gcm", "fullsim", "scalarmult", "karatsuba",
	"table10", "table11", "table12", "table13", "vscale", "ablations",
}

func main() {
	target := flag.String("t", "all", "experiment id (or 'all')")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(order, "\n"))
		return
	}
	if *target == "all" {
		for _, id := range order {
			experiments[id]()
		}
		return
	}
	fn, ok := experiments[*target]
	if !ok {
		var ids []string
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", *target, strings.Join(ids, ", "))
		os.Exit(2)
	}
	fn()
}

func header(title string) {
	fmt.Printf("\n================================================================\n%s\n================================================================\n", title)
}

func table2() {
	header("Table 2 — Multiplier resource comparison (m = 8)")
	fmt.Println(hwmodel.SystolicMultiplier(8))
	fmt.Println(hwmodel.CompactMultiplier(8))
	fmt.Println("\nSweep m = 5..8 (total normalized area):")
	fmt.Printf("%4s %12s %12s %8s\n", "m", "systolic", "this work", "ratio")
	for m := 5; m <= 8; m++ {
		s := hwmodel.SystolicMultiplier(m).Total
		c := hwmodel.CompactMultiplier(m).Total
		fmt.Printf("%4d %12.1f %12.1f %7.2fx\n", m, s, c, s/c)
	}
	fmt.Println("paper: systolic 16.5m^2-10m vs this work 6.5m^2-7.75m (reproduced exactly)")
	mu := netlist.NewMultiplier(8)
	fmt.Printf("\ngate-level netlist (internal/netlist): %d AND + %d XOR gates, depth %d\n",
		mu.Count(netlist.And), mu.Count(netlist.Xor), mu.Depth())
	fmt.Println("(constructed per Fig. 5 and simulated bit-exactly; counts land on the")
	fmt.Println(" closed forms above by construction)")
}

func table3() {
	header("Table 3 — Multiplication vs square primitive (28 nm)")
	fmt.Printf("%-22s %10s %10s\n", "", "GF mult", "GF square")
	fmt.Printf("%-22s %10d %10d\n", "# of cells", hwmodel.MultUnitCells, hwmodel.SquareUnitCells)
	fmt.Printf("%-22s %10.2f %10.2f\n", "area (um^2)", hwmodel.MultUnitAreaUm2, hwmodel.SquareUnitAreaUm2)
	fmt.Printf("%-22s %10.1f %10.1f\n", "critical path (ns)", hwmodel.MultUnitCritNs, hwmodel.SquareUnitCritNs)
	fmt.Printf("%-22s %10d %10d\n", "# of primitive units", hwmodel.NumMultUnits, hwmodel.NumSquareUnits)
	fmt.Println("(paper calibration constants, carried verbatim)")
	mu := netlist.NewMultiplier(8)
	sq := netlist.NewSquare(8)
	fmt.Printf("netlist cross-check: mult %d gates depth %d, square %d gates depth %d\n",
		mu.Count(netlist.And)+mu.Count(netlist.Xor), mu.Depth(),
		sq.Count(netlist.And)+sq.Count(netlist.Xor), sq.Depth())
	fmt.Println("(gate ratio ~3.5x, depth ratio 2x — matching the 263/73 cells and 0.4/0.2 ns)")
}

func table4() {
	header("Table 4 — Multiplicative-inverse resource comparison (m = 8)")
	fmt.Println(hwmodel.SystolicEuclidInverse(8))
	fmt.Println(hwmodel.ITAInverse(8))
	s, i := hwmodel.SystolicEuclidInverse(8).Total, hwmodel.ITAInverse(8).Total
	fmt.Printf("ratio: %.2fx smaller (paper: 57m^2 vs 48.75m^2)\n", s/i)
}

func testWordRS(seed int64, nerr int) (*rs.Code, []gf.Elem) {
	f := gf.MustDefault(8)
	c := rs.Must(f, 255, 239)
	rng := rand.New(rand.NewSource(seed))
	msg := make([]gf.Elem, c.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	cw, err := c.Encode(msg)
	if err != nil {
		panic(err)
	}
	for _, p := range rng.Perm(c.N)[:nerr] {
		cw[p] ^= gf.Elem(1 + rng.Intn(255))
	}
	return c, cw
}

func table6() {
	header("Table 6 — Syndrome inner loop, executed on the cycle-accurate simulator")
	c, recv := testWordRS(101, 6)
	var baseCycles, baseInsts int64
	for idx := 1; idx <= 4; idx++ {
		res, _, _, err := programs.Run(programs.SyndromeBaseline(c.F, recv, idx), false)
		if err != nil {
			panic(err)
		}
		baseCycles += res.Cycles
		baseInsts += res.Instructions
	}
	simd, _, _, err := programs.Run(programs.SyndromeSIMD(c.F, recv, 1), true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("4 syndromes of RS(255,239,8), real assembly on both profiles:\n")
	fmt.Printf("%-34s %10s %12s\n", "", "cycles", "instructions")
	fmt.Printf("%-34s %10d %12d\n", "M0+ baseline (log-domain, 4 runs)", baseCycles, baseInsts)
	fmt.Printf("%-34s %10d %12d\n", "GF processor (one SIMD pass)", simd.Cycles, simd.Instructions)
	fmt.Printf("speedup: %.1fx for the 4-lane head-to-head\n", float64(baseCycles)/float64(simd.Cycles))
	fmt.Println("paper: inner loop collapses from 2 table lookups + int add + modulo + xor")
	fmt.Println("       to two single-cycle GF instructions (structure reproduced above)")
}

func table7() {
	header("Table 7 — GF(2^233) multiplication/squaring cycle breakdown (GF processor)")
	f := gfbig.F233()
	ph := kernels.MeasureTable7(f)
	fmt.Printf("%-28s %10s %10s\n", "phase", "measured", "paper")
	fmt.Printf("%-28s %10d %10d\n", "mult: full product", ph.MulFullProduct, 462+45)
	fmt.Printf("%-28s %10d %10d\n", "mult: polynomial reduction", ph.MulReduction, 92)
	fmt.Printf("%-28s %10d %10d\n", "mult: total", ph.MulTotal, 599)
	fmt.Printf("%-28s %10d %10d\n", "square: total", ph.SqrTotal, 136)
	fmt.Printf("%-28s %10d %10d\n", "gf32bMult per mult", ph.GF32PerMul, 64)
	fmt.Printf("%-28s %10d %10d\n", "gf32bMult per square", ph.GF32PerSqr, 8)

	// Cross-validate the full-product phase on the real simulator.
	rng := rand.New(rand.NewSource(7))
	a, b := f.Zero(), f.Zero()
	for i := range a {
		a[i], b[i] = rng.Uint32(), rng.Uint32()
	}
	a[len(a)-1] &= 1<<(f.M()%32) - 1
	b[len(b)-1] &= 1<<(f.M()%32) - 1
	res, _, _, err := programs.Run(programs.WideMulFullProduct(f, a, b), true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfull-product phase executed as real assembly on the simulator: %d cycles\n", res.Cycles)
	fmt.Println("(paper full product + rearrange: 507 cycles)")
}

func table8() {
	header("Table 8 — ECC_l GF(2^233) mult/square vs prior platforms")
	c := ecc.K233()
	gfp := kernels.MeasureWideField(c, kernels.GFProc)
	base := kernels.MeasureWideField(c, kernels.Baseline)
	fmt.Printf("%-40s %10s %10s\n", "platform", "mult", "square")
	fmt.Printf("%-40s %10d %10d\n", "Erdem [14], ARM7TDMI GF(2^228) (paper)", 4359, 348)
	fmt.Printf("%-40s %10d %10d\n", "Clercq [11], Cortex M0+ (paper, 4KB tbl)", 3672, 395)
	fmt.Printf("%-40s %10d %10d\n", "our M0+ baseline (table-free, measured)", base.Mul, base.Sqr)
	fmt.Printf("%-40s %10d %10s\n", "our M0+ baseline (4-bit window, ~4KB)", base.MulWindowed, "-")
	fmt.Printf("%-40s %10d %10d\n", "GF processor (measured)", gfp.Mul, gfp.Sqr)
	fmt.Printf("%-40s %10d %10d\n", "GF processor (paper)", 599, 136)
	fmt.Printf("\nspeedup vs Clercq: mult %.1fx (paper 6.1x), square %.1fx (paper 2.9x)\n",
		3672/float64(gfp.Mul), 395/float64(gfp.Sqr))
}

func table9() {
	header("Table 9 — K-233 point operations (cycles)")
	c := ecc.K233()
	gfp := kernels.MeasureWideField(c, kernels.GFProc)
	fmt.Printf("%-26s %12s %12s %12s\n", "operation", "Clercq(paper)", "measured", "paper")
	fmt.Printf("%-26s %12d %12d %12d\n", "GF mult (direct)", 3672, gfp.Mul, 599)
	fmt.Printf("%-26s %12d %12d %12d\n", "GF mult (Karatsuba)", 3672, gfp.MulKaratsuba, 439)
	fmt.Printf("%-26s %12d %12d %12d\n", "GF add", 68, gfp.Add, 66)
	fmt.Printf("%-26s %12d %12d %12d\n", "GF square", 395, gfp.Sqr, 136)
	fmt.Printf("%-26s %12d %12d %12d\n", "point addition", 34426, gfp.PointAdd, 6742)
	fmt.Printf("%-26s %12s %12d %12d\n", "point doubling", "n/r", gfp.PointDbl, 3499)
	fmt.Printf("%-26s %12d %12d %12d\n", "GF inverse", 139000, gfp.Inv, 39972)
	fmt.Printf("\npoint-add speedup vs Clercq: %.1fx (paper: 5.1x direct, 6.5x Karatsuba)\n",
		34426/float64(gfp.PointAdd))
}

func fig9() {
	header("Fig. 9 — ECC_r decoder speedup over M0+ (per kernel)")
	// RS(255,239,8) with t errors.
	c, recv := testWordRS(202, 8)
	bd, _, err := kernels.DecodeRS(c, recv)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s:\n", bd.Code)
	fmt.Printf("%-28s %12s %12s %8s\n", "kernel", "M0+ cycles", "GFproc", "speedup")
	for _, r := range []perf.Result{bd.Syndrome, bd.BMA, bd.Chien, bd.Forney, bd.Overall} {
		fmt.Println(r)
	}

	code := bch.Must(gf.MustDefault(5), 5)
	rng := rand.New(rand.NewSource(203))
	msg := make([]byte, code.K)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	cw, _ := code.Encode(msg)
	for _, p := range rng.Perm(code.N)[:5] {
		cw[p] ^= 1
	}
	bbd, _, err := kernels.DecodeBCH(code, cw)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%s:\n", bbd.Code)
	fmt.Printf("%-28s %12s %12s %8s\n", "kernel", "M0+ cycles", "GFproc", "speedup")
	for _, r := range []perf.Result{bbd.Syndrome, bbd.BMA, bbd.Chien, bbd.Overall} {
		fmt.Println(r)
	}
	fmt.Println("\npaper shape: syndrome >20x, BMA least, Forney >10x, RS overall >10x,")
	fmt.Println("             RS overall beats binary BCH overall")
}

func encoders() {
	header("Encoders — systematic encoding on both machines (feasibility note, Sec. 3.1)")
	f := gf.MustDefault(8)
	code := rs.Must(f, 255, 239)
	rng := rand.New(rand.NewSource(402))
	msg := make([]gf.Elem, code.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(256))
	}
	bc := bch.Must(gf.MustDefault(5), 5)
	bits := make([]byte, bc.K)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	res, err := kernels.EncoderResults(code, msg, bc, bits)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-28s %12s %12s %8s\n", "kernel", "M0+ cycles", "GFproc", "speedup")
	for _, r := range res {
		fmt.Println(r)
	}
	fmt.Println("\nRS encoding is GF-multiply bound (big win); binary BCH encoding is")
	fmt.Println("xor-only so the GF unit adds little — parity with the scalar core.")
}

func fig10() {
	header("Fig. 10 — AES speedup over M0+ (per kernel)")
	key := []byte("\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c")
	pt := []byte("\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34")
	bd, err := kernels.AESKernels(key, pt)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-28s %12s %12s %8s\n", "kernel", "M0+ cycles", "GFproc", "speedup")
	for _, r := range []perf.Result{bd.AddRoundKey, bd.SBox, bd.ShiftRows, bd.MixCol,
		bd.InvMixCol, bd.KeyExpansion, bd.Encrypt, bd.Decrypt} {
		fmt.Println(r)
	}
	fmt.Println("\npaper shape: S-box & MixCol/invMixCol best; MixCol >10x, invMixCol ~20x;")
	fmt.Println("             encryption >5x, decryption >10x")
	tput := 128.0 / float64(bd.Encrypt.GFProc) * 100
	fmt.Printf("implied AES-128 throughput @100 MHz: %.1f Mbps (paper: 12.2 Mbps)\n", tput)

	// Cross-validate: the same encryption as real assembly on the
	// cycle-accurate simulator.
	src, err := programs.AESEncryptBlock(key, pt)
	if err != nil {
		panic(err)
	}
	res, _, _, err := programs.Run(src, true)
	if err != nil {
		panic(err)
	}
	fmt.Printf("full AES-128 block executed as real assembly on the simulator: %d cycles\n", res.Cycles)
	fmt.Printf("(metered model above: %d cycles — two independent layers agree)\n", bd.Encrypt.GFProc)

	// And the full head-to-head: the BASELINE AES also runs as real code.
	bSrc, err := programs.AESEncryptBlockBaseline(key, pt)
	if err != nil {
		panic(err)
	}
	bRes, _, _, err := programs.Run(bSrc, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("baseline AES-128 as real assembly (no GF unit): %d cycles\n", bRes.Cycles)
	fmt.Printf("=> simulated encryption speedup: %.1fx (paper: >5x)\n",
		float64(bRes.Cycles)/float64(res.Cycles))
}

func fullsim() {
	header("Full programs on the cycle-accurate simulator (all verified against references)")
	fmt.Printf("%-52s %10s %10s\n", "program", "cycles", "insts")
	row := func(name string, res *programs.RunResult) {
		fmt.Printf("%-52s %10d %10d\n", name, res.Cycles, res.Instructions)
	}
	rng := rand.New(rand.NewSource(777))

	// Table 6 syndrome loops.
	c, recv := testWordRS(778, 6)
	res, _, _, err := programs.Run(programs.SyndromeSIMD(c.F, recv, 1), true)
	if err != nil {
		panic(err)
	}
	row("RS(255,239) 4 syndromes, SIMD", res)

	// BMA.
	f4 := gf.MustDefault(4)
	code15 := rs.Must(f4, 15, 11)
	msg := make([]gf.Elem, code15.K)
	for i := range msg {
		msg[i] = gf.Elem(rng.Intn(16))
	}
	cw, _ := code15.Encode(msg)
	cw[3] ^= 5
	cw[9] ^= 9
	src, _ := programs.BMA(f4, code15.Syndromes(cw))
	res, _, _, err = programs.Run(src, true)
	if err != nil {
		panic(err)
	}
	row("Berlekamp-Massey, 4 syndromes", res)

	// Chien.
	lambda := code15.BerlekampMassey(code15.Syndromes(cw))
	src, _ = programs.ChienSIMD(f4, lambda, 15)
	res, _, _, err = programs.Run(src, true)
	if err != nil {
		panic(err)
	}
	row("Chien search, 15 positions, SIMD", res)

	// Complete decoders.
	src, _ = programs.RSDecode15(cw)
	res, _, _, err = programs.Run(src, true)
	if err != nil {
		panic(err)
	}
	row("COMPLETE RS(15,11,2) decoder (Peterson+Forney)", res)

	bcode := bch.Must(f4, 2)
	bmsg := make([]byte, bcode.K)
	bcw, _ := bcode.Encode(bmsg)
	bcw[2] ^= 1
	bcw[11] ^= 1
	src, _ = programs.BCHDecode15(bcw)
	res, _, _, err = programs.Run(src, true)
	if err != nil {
		panic(err)
	}
	row("COMPLETE BCH(15,7,2) decoder (closed-form ELP)", res)

	// Wide multiply full product.
	f233 := gfbig.F233()
	a, b := f233.Zero(), f233.Zero()
	for i := range a {
		a[i], b[i] = rng.Uint32(), rng.Uint32()
	}
	a[len(a)-1] &= 1<<(233%32) - 1
	b[len(b)-1] &= 1<<(233%32) - 1
	res, _, _, err = programs.Run(programs.WideMulFullProduct(f233, a, b), true)
	if err != nil {
		panic(err)
	}
	row("GF(2^233) full product, 64x gf32mul", res)

	// AES.
	key := make([]byte, 16)
	pt := make([]byte, 16)
	state := make([]byte, 16)
	rng.Read(key)
	rng.Read(pt)
	rng.Read(state)
	res, _, _, err = programs.Run(programs.AESSubBytes(state, false), true)
	if err != nil {
		panic(err)
	}
	row("AES SubBytes (16 S-boxes, 4 gfmulinv)", res)
	esrc, _ := programs.AESEncryptBlock(key, pt)
	res, _, _, err = programs.Run(esrc, true)
	if err != nil {
		panic(err)
	}
	row("COMPLETE AES-128 encrypt (FIPS-verified)", res)
	bsrc, _ := programs.AESEncryptBlockBaseline(key, pt)
	res, _, _, err = programs.Run(bsrc, false)
	if err != nil {
		panic(err)
	}
	row("COMPLETE AES-128 encrypt, M0+ BASELINE (tables)", res)
	ct := make([]byte, 16)
	dsrc, _ := programs.AESDecryptBlock(key, ct)
	res, _, _, err = programs.Run(dsrc, true)
	if err != nil {
		panic(err)
	}
	row("COMPLETE AES-128 decrypt (coeff-agnostic invMixCol)", res)
	fmt.Println("\nEvery program's output is checked against the reference Go implementations")
	fmt.Println("(and FIPS-197 for AES) in internal/programs tests.")
}

func gcm() {
	header("Extension — AES-GCM authenticated packet (AES + GF(2^128) GHASH)")
	key := make([]byte, 16)
	nonce := make([]byte, 12)
	pt := make([]byte, 128)
	r, err := kernels.GCMResult(key, nonce, pt, []byte("hdr"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-28s %12s %12s %8s\n", "kernel", "M0+ cycles", "GFproc", "speedup")
	fmt.Println(r)
	fmt.Println("\nGHASH is GF(2^128) multiplication: 16 gf32bMult + sparse reduction per")
	fmt.Println("block on the GF processor vs the 128-step shift/xor loop on the M0+.")
}

func scalarmult() {
	header("Section 3.3.4 — K-233 scalar multiplication / ECDH latency")
	c := ecc.K233()
	k := ecc.PaperScalar()
	var m perf.Meter
	tr := kernels.ScalarMult(c, k, c.Generator(), kernels.GFProc, 0, &m)
	fmt.Printf("paper scalar: %d point additions, %d point doublings\n", tr.PointAdds, tr.PointDoubles)
	fmt.Printf("%-34s %12s %12s\n", "", "measured", "paper")
	fmt.Printf("%-34s %12d %12d\n", "main double-and-add loop (cycles)", tr.MainCycles, 617120)
	fmt.Printf("%-34s %12d %12d\n", "supporting ops (cycles)", tr.SupportCycles, 157442)
	total := tr.MainCycles + tr.SupportCycles
	fmt.Printf("%-34s %12.2f %12.2f\n", "scalar mult @100 MHz (ms)", float64(total)/1e5, 7.75)
	fmt.Println("paper: ECDH key exchange finishes within 8 ms at 100 MHz")
}

func karatsuba() {
	header("Section 3.3.4 — Karatsuba software optimization on GF(2^233)")
	c := ecc.K233()
	gfp := kernels.MeasureWideField(c, kernels.GFProc)
	base := kernels.MeasureWideField(c, kernels.Baseline)
	fmt.Printf("direct product:    %6d cycles\n", gfp.Mul)
	fmt.Printf("2-level Karatsuba: %6d cycles\n", gfp.MulKaratsuba)
	fmt.Printf("speedup: %.2fx (paper: 1.4x)\n", float64(gfp.Mul)/float64(gfp.MulKaratsuba))
	fmt.Printf("vs baseline: %.1fx (paper: 8.4x vs their baseline)\n",
		float64(base.Mul)/float64(gfp.MulKaratsuba))
	fmt.Printf("32-bit partial products: direct %d, 1-level %d, 2-level %d\n",
		gfbig.Clmul32Count(8, 0), gfbig.Clmul32Count(8, 1), gfbig.Clmul32Count(8, 2))
}

func table10() {
	header("Table 10 — GF arithmetic unit area & critical path (28 nm)")
	b := hwmodel.Table10()
	fmt.Printf("16 x GF mult array:   %8.1f um^2\n", b.MultArrayAreaUm2)
	fmt.Printf("28 x GF square array: %8.1f um^2\n", b.SquareArrayAreaUm2)
	fmt.Printf("instruction control:  %8.1f um^2\n", b.ControlAreaUm2)
	fmt.Printf("total:                %8.1f um^2 (paper: 5760)\n", b.TotalAreaUm2)
	fmt.Printf("critical path:        %8.2f ns @ GF multiplicative inverse\n", b.CritPathNs)
	fmt.Printf("\nnetlist derivation: 4 serial mults (depth %d) + 7 serial squares (depth %d)\n",
		netlist.NewMultiplier(8).Depth(), netlist.NewSquare(8).Depth())
	fmt.Printf("at the Table-3 calibration (%.0f ps/level) => %.2f ns (paper: 2.91 ns)\n",
		1000*netlist.GateDelayNs(), netlist.InverseCritPathNs(8))
}

func table11() {
	header("Table 11 — GF processor characteristics (28 nm, 0.9 V, 100 MHz)")
	p := hwmodel.Table11()
	fmt.Printf("%-24s %10s %12s %10s\n", "", "gates", "area (um^2)", "power (uW)")
	fmt.Printf("%-24s %10d %12.0f %10.0f\n", "2-stage shell", p.ShellGates, p.ShellArea, p.ShellPower)
	fmt.Printf("%-24s %10d %12.0f %10.0f\n", "GF arithmetic unit", p.GFGates, p.GFArea, p.GFPower)
	fmt.Printf("%-24s %10d %12.0f %10.0f\n", "design total", p.TotalGates, p.TotalArea, p.TotalPower)
	fmt.Printf("area: %.4f mm^2; max clock %v MHz\n", p.TotalArea/1e6, hwmodel.MaxClockMHz)
}

func table12() {
	header("Table 12 — Area vs smallest AES ASIC (Intel NanoAES, scaled to 28 nm)")
	c := hwmodel.Table12()
	fmt.Printf("Intel enc %0.f + dec %0.f = %0.f um^2\n", c.IntelEnc, c.IntelDec, c.IntelTotal)
	fmt.Printf("GF arithmetic unit: %0.f um^2 (smaller than enc+dec: %v)\n", c.GFUnit, c.GFUnitSmaller)
	fmt.Printf("whole processor:    %0.f um^2 (+%.1f%% over the AES ASIC pair)\n",
		c.ProcessorTotal, 100*c.ExtraAreaFrac)
	fmt.Println("paper: \"with 63.5% additional area in total\" — reproduced")
}

func table13() {
	header("Table 13 — AES energy efficiency vs Zhang ASIC (28 nm, 0.9 V, 100 MHz)")
	key := make([]byte, 16)
	pt := make([]byte, 16)
	bd, err := kernels.AESKernels(key, pt)
	if err != nil {
		panic(err)
	}
	rows := hwmodel.Table13(bd.Encrypt.GFProc)
	fmt.Printf("%-26s %10s %12s %12s\n", "design", "power(uW)", "tput(Mbps)", "pJ/bit")
	for _, r := range rows {
		fmt.Printf("%-26s %10.0f %12.1f %12.2f\n", r.Design, r.PowerUW, r.ThroughputMbps, r.EnergyPJPerBit)
	}
	fmt.Printf("ASIC remains ~%.0fx more energy-efficient — the price of programmability\n",
		rows[1].EnergyPJPerBit/rows[0].EnergyPJPerBit)
}

func vscale() {
	header("Section 3.4.2 — Voltage scaling to 0.7 V")
	v := hwmodel.VoltageScaled()
	fmt.Printf("at %.1f V, 100 MHz: GF unit %.0f uW, processor %.0f uW\n", v.VoltageV, v.GFPower, v.TotalPower)
	fmt.Printf("energy-efficiency gain: %.2fx (paper: 1.86x)\n", hwmodel.TotalPowerUW/v.TotalPower)
	fmt.Printf("idle GF unit with data gating draws %.1f uW (77%% dynamic saving)\n",
		hwmodel.GFUnitPowerModel(0))
}

func ablations() {
	header("Ablations — design choices called out in DESIGN.md")

	// 1. SIMD width on the RS syndrome kernel.
	fmt.Println("(a) SIMD width on RS(255,239,8) syndromes (modeled cycles):")
	c, recv := testWordRS(301, 8)
	var base perf.Meter
	kernels.SyndromesRS(c, recv, kernels.Baseline, &base)
	baseCycles := base.Cycles(perf.M0Plus())
	for _, lanes := range []int{1, 2, 4, 8} {
		// nv vectors of `lanes` syndromes: inner loop work scales with nv.
		twoT := 2 * c.T
		nv := (twoT + lanes - 1) / lanes
		var m perf.Meter
		m.Alu(int64(2 * nv))
		for j := 0; j < c.N; j++ {
			m.Load(1)
			m.Alu(1)
			m.IMul(1)
			m.GF(int64(2 * nv))
			m.Alu(2)
			m.Taken(1)
		}
		cyc := m.Cycles(perf.GFProcessor())
		fmt.Printf("    %d-lane: %7d cycles  (%.1fx over baseline %d)\n", lanes, cyc,
			float64(baseCycles)/float64(cyc), baseCycles)
	}
	fmt.Println("    -> 4->8 lanes gains little: 16 syndromes already fit 4 vectors (paper's choice)")

	// 2. Multiplier-primitive count vs capabilities.
	fmt.Println("\n(b) multiplier primitives vs single-cycle capabilities:")
	for _, n := range []int{8, 16, 32} {
		inv4 := n >= 16
		pp32 := n >= 16
		pp64 := n >= 64
		fmt.Printf("    %2d multipliers: 4-way inverse=%v, 32b product=%v, 64b product=%v\n",
			n, inv4, pp32, pp64)
	}
	fmt.Println("    -> 16 exactly matches one 4-way inverse OR one 32-bit product (paper Section 2.4.1)")

	// 3. Inverse method on the baseline.
	fmt.Println("\n(c) GF(2^8) inverse methods, functional op counts (AES field):")
	f := gf.AES()
	_, tr := f.InvITAOps(0x53)
	fmt.Printf("    ITA chain: %d mults + %d squares (single cycle in HW)\n", tr.Muls, tr.Squares)
	fmt.Printf("    Fermat a^254: 13 multiplies by square-and-multiply\n")
	fmt.Printf("    log-domain software: 2 table lookups + subtract (baseline path)\n")

	// 4. Karatsuba depth.
	fmt.Println("\n(d) Karatsuba depth on GF(2^233) (gf32bMult count / modeled cycles):")
	cc := ecc.K233()
	for lv := 0; lv <= 3; lv++ {
		var m perf.Meter
		o := &kernels.WideOps{F: cc.F, Mach: kernels.GFProc, M: &m, Karatsuba: lv}
		a := cc.F.FromUint64(0x123456789ABCDEF)
		o.Mul(a, cc.Gx)
		fmt.Printf("    %d-level: %2d products, %4d cycles\n",
			lv, gfbig.Clmul32Count(8, lv), m.Cycles(perf.GFProcessor()))
	}

	// 5. Data gating.
	fmt.Println("\n(e) data-gating power model (GF unit, 152 uW budget):")
	for _, busy := range []float64{0, 0.25, 0.5, 1} {
		fmt.Printf("    busy %3.0f%%: %6.1f uW\n", busy*100, hwmodel.GFUnitPowerModel(busy))
	}

	// 6. Scalar-multiplication method: double-and-add vs wNAF windows
	// (the precomputation family the paper cites as [30]).
	fmt.Println("\n(f) K-233 scalar multiplication: group operations by method:")
	curve := ecc.K233()
	kk := ecc.PaperScalar()
	var mm perf.Meter
	smTr := kernels.ScalarMult(curve, kk, curve.Generator(), kernels.GFProc, 0, &mm)
	fmt.Printf("    double-and-add: %d doubles + %d adds\n", smTr.PointDoubles, smTr.PointAdds)
	for _, w := range []uint{2, 4, 5} {
		_, st := curve.ScalarMultWNAFStats(kk, curve.Generator(), w)
		fmt.Printf("    wNAF w=%d:      %d doubles + %d adds (+%d precomp adds)\n",
			w, st.Doubles, st.Adds, st.Precomp)
	}

	// 7. Montgomery ladder (constant control flow) vs double-and-add.
	fmt.Println("\n(g) K-233 scalar multiplication: Montgomery ladder vs double-and-add (modeled cycles):")
	var ml perf.Meter
	lt := kernels.MontgomeryLadder(curve, kk, curve.Generator(), kernels.GFProc, &ml)
	fmt.Printf("    double-and-add:    %7d cycles (key-dependent branches)\n",
		smTr.MainCycles+smTr.SupportCycles)
	fmt.Printf("    Montgomery ladder: %7d cycles (constant per-bit work, x-only formulas)\n",
		lt.MainCycles+lt.RecovCycles)
	fmt.Println("    -> the ladder's cheaper differential formulas beat the sparse-scalar")
	fmt.Println("       double-and-add AND remove the key-dependent control flow")

	// 8. Koblitz-specific: tau-adic NAF replaces all doublings with
	// Frobenius maps (three field squarings) — the deep reason the paper's
	// curve is K-233.
	fmt.Println("\n(h) K-233 dense random scalar: tau-adic NAF (Koblitz-only, modeled cycles):")
	kd, _ := new(big.Int).SetString("5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a5a", 16)
	var md2, mt2 perf.Meter
	dd := kernels.ScalarMult(curve, kd, curve.Generator(), kernels.GFProc, 0, &md2)
	tn, err := kernels.ScalarMultTNAF(curve, kd, curve.Generator(), kernels.GFProc, &mt2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("    double-and-add: %7d cycles\n", dd.MainCycles+dd.SupportCycles)
	fmt.Printf("    tau-adic NAF:   %7d cycles (%d adds + %d Frobenius maps, 0 doublings)\n",
		tn.Cycles, tn.Adds, tn.Frobenius)
	fmt.Printf("    -> %.1fx: the Frobenius endomorphism turns every doubling into 3 squarings\n",
		float64(dd.MainCycles+dd.SupportCycles)/float64(tn.Cycles))
}
