// Command gfpipe drives a concurrent frame-processing pipeline at load
// and reports throughput, latency and correction statistics — the
// "production-scale" counterpart of the one-shot codec CLIs: the same
// encode -> interleave -> channel -> deinterleave -> decode datapath
// (optionally AES-GCM sealed end to end), fanned out over per-stage
// worker pools with bounded queues and in-order delivery.
//
// Usage:
//
//	gfpipe [-frames 2000] [-n 255] [-k 239] [-depth 4] [-workers 0]
//	       [-queue 0] [-channel bsc|burst|none] [-ebn0 6.5] [-p 0]
//	       [-gcm] [-metered] [-seed 1] [-quiet]
//
// Examples:
//
//	gfpipe                          # RS(255,239) x4 over a BSC at Eb/N0 6.5dB
//	gfpipe -gcm -channel burst      # sealed frames over a bursty channel
//	gfpipe -depth 1 -metered        # single-codeword frames with cycle accounting
//	gfpipe -workers 1               # serialize every stage (scaling baseline)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/aes"
	"repro/internal/channel"
	"repro/internal/gf"
	"repro/internal/kernels"
	"repro/internal/pipeline"
	"repro/internal/rs"
)

func main() {
	frames := flag.Int("frames", 2000, "frames to push through the pipeline")
	n := flag.Int("n", 255, "RS codeword length (symbols, over GF(2^8))")
	k := flag.Int("k", 239, "RS message length (symbols)")
	depth := flag.Int("depth", 4, "interleaving depth (codewords per frame)")
	workers := flag.Int("workers", 0, "workers per stage (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-stage queue depth (0 = 2*workers)")
	chName := flag.String("channel", "bsc", "channel model: bsc, burst or none")
	ebn0 := flag.Float64("ebn0", 6.5, "Eb/N0 (dB) for the BPSK/AWGN flip probability")
	pOverride := flag.Float64("p", 0, "explicit crossover probability (overrides -ebn0)")
	useGCM := flag.Bool("gcm", false, "AES-GCM seal before encode, open after decode")
	metered := flag.Bool("metered", false, "metered RS decode with cycle accounting (needs -depth 1)")
	seed := flag.Int64("seed", 1, "rng seed (payloads and channel)")
	quiet := flag.Bool("quiet", false, "suppress the per-stage table")
	flag.Parse()

	if err := run(*frames, *n, *k, *depth, *workers, *queue, *chName, *ebn0,
		*pOverride, *useGCM, *metered, *seed, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "gfpipe:", err)
		os.Exit(1)
	}
}

func run(frames, n, k, depth, workers, queue int, chName string, ebn0, pOverride float64,
	useGCM, metered bool, seed int64, quiet bool) error {
	if frames < 1 {
		return fmt.Errorf("need at least one frame")
	}
	if metered && depth != 1 {
		return fmt.Errorf("-metered requires -depth 1 (per-codeword cycle accounting)")
	}
	f8 := gf.MustDefault(8)
	code, err := rs.New(f8, n, k)
	if err != nil {
		return err
	}
	iv, err := rs.NewInterleaved(code, depth)
	if err != nil {
		return err
	}

	p := pOverride
	if p == 0 && chName != "none" {
		p = channel.BPSKBitErrorProb(ebn0)
	}
	var stages []pipeline.Stage

	var gcm *aes.GCM
	aad := []byte("gfpipe")
	if useGCM {
		cipher, err := aes.NewCipher([]byte("gfpipe-demo-key!"))
		if err != nil {
			return err
		}
		gcm = cipher.NewGCM()
		stages = append(stages, pipeline.NewSealAEAD(gcm, aad))
	}

	if depth == 1 {
		enc, err := pipeline.NewRSEncode(code)
		if err != nil {
			return err
		}
		stages = append(stages, enc)
	} else {
		enc, err := pipeline.NewRSFrameEncode(iv)
		if err != nil {
			return err
		}
		stages = append(stages, enc)
	}

	switch chName {
	case "none":
	case "bsc":
		bsc, err := channel.NewBSC(p, seed)
		if err != nil {
			return err
		}
		corrupt, err := pipeline.NewCorrupt(bsc, 8, seed)
		if err != nil {
			return err
		}
		stages = append(stages, corrupt)
	case "burst":
		// A bursty channel with the same average flip rate: rare
		// transitions into a bad state that is 50x noisier than the good
		// one (mean sojourn 1/0.2 = 5 bits bad, 1% of time bad).
		pBad := 50 * p / (0.99 + 50*0.01) // solve 0.99*pg + 0.01*pb = p with pb = 50*pg
		if pBad > 0.5 {
			pBad = 0.5
		}
		ge, err := channel.NewGilbertElliott(0.002, 0.2, pBad/50, pBad, seed)
		if err != nil {
			return err
		}
		corrupt, err := pipeline.NewCorrupt(ge, 8, seed)
		if err != nil {
			return err
		}
		stages = append(stages, corrupt)
	default:
		return fmt.Errorf("unknown channel %q (want bsc, burst or none)", chName)
	}

	switch {
	case metered:
		dec, err := pipeline.NewMeteredRSDecode(code, kernels.GFProc)
		if err != nil {
			return err
		}
		stages = append(stages, dec)
	case depth == 1:
		dec, err := pipeline.NewRSDecode(code)
		if err != nil {
			return err
		}
		stages = append(stages, dec)
	default:
		dec, err := pipeline.NewRSFrameDecode(iv)
		if err != nil {
			return err
		}
		stages = append(stages, dec)
	}
	if useGCM {
		stages = append(stages, pipeline.NewOpenAEAD(gcm, aad))
	}

	pl, err := pipeline.New(pipeline.Config{Workers: workers, Queue: queue}, stages...)
	if err != nil {
		return err
	}

	payloadLen := iv.FrameK()
	if useGCM {
		payloadLen -= 16 // the GCM tag rides inside the coded frame
	}
	rng := rand.New(rand.NewSource(seed))
	payloads := make([][]byte, frames)
	for i := range payloads {
		payloads[i] = make([]byte, payloadLen)
		rng.Read(payloads[i])
	}

	cfg := pl.Config()
	fmt.Printf("gfpipe: %d frames x %dB payload, RS(%d,%d) depth %d, %d workers/stage, queue %d\n",
		frames, payloadLen, n, k, depth, cfg.Workers, cfg.Queue)
	if chName != "none" {
		fmt.Printf("channel: %s (bit flip p=%.3e)\n", chName, p)
	}

	start := time.Now()
	got, runErr := pl.Start().Drain(payloads)
	elapsed := time.Since(start)

	failed, mismatched, corrected := 0, 0, 0
	for i, fr := range got {
		if fr.Err != nil {
			failed++
			continue
		}
		corrected += fr.Corrected
		if len(fr.Data) != payloadLen {
			mismatched++
			continue
		}
		if string(fr.Data) != string(payloads[i]) {
			mismatched++
		}
	}
	if mismatched > 0 {
		return fmt.Errorf("%d frames round-tripped to wrong bytes", mismatched)
	}

	goodput := float64(payloadLen) * float64(frames-failed) / elapsed.Seconds()
	fmt.Printf("\n%-22s %d ok, %d failed (%.3g%% frame loss), %d symbols corrected\n",
		"frames:", frames-failed, failed, 100*float64(failed)/float64(frames), corrected)
	fmt.Printf("%-22s %v wall, %.0f frames/s, %.2f MB/s goodput\n",
		"throughput:", elapsed.Round(time.Millisecond),
		float64(frames)/elapsed.Seconds(), goodput/1e6)
	fmt.Printf("%-22s %s\n", "end-to-end latency:", pl.Total.String())
	if runErr != nil {
		fmt.Printf("%-22s %v\n", "first failure:", runErr)
	}

	if !quiet {
		fmt.Println("\nper-stage:")
		for _, st := range pl.Stats() {
			fmt.Println("  " + st.String())
		}
	}
	if metered {
		for _, st := range pl.Stats() {
			counts := st.Counts()
			if counts.Total() == 0 {
				continue
			}
			prof := kernels.GFProc.Profile()
			cyc := counts.Cycles(prof)
			fmt.Printf("\nmetered %s (%s): %d ops, %d cycles total, %.0f cycles/frame, %d GF SIMD ops\n",
				st.Name, prof.Name, counts.Total(), cyc, float64(cyc)/float64(frames), counts.GFOp)
		}
	}

	// Surface the parallelism actually available so scaling numbers are
	// interpretable when pasted into reports.
	fmt.Printf("\nhost: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	return nil
}
