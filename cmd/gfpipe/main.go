// Command gfpipe drives a concurrent frame-processing pipeline at load
// and reports throughput, latency and correction statistics — the
// "production-scale" counterpart of the one-shot codec CLIs: the same
// encode -> interleave -> channel -> deinterleave -> decode datapath
// (optionally AES-GCM sealed end to end), fanned out over per-stage
// worker pools with bounded queues and in-order delivery.
//
// With -adaptive it instead runs the closed-loop link controller of
// internal/adaptive over a time-varying channel: decode feedback walks a
// ladder of RS(255,k) codes — stronger under degradation, relaxing back
// with hysteresis — and the report shows the rate trajectory plus
// per-epoch goodput and residual failure rate. The whole run is
// deterministic in -seed.
//
// Usage:
//
//	gfpipe [-frames 2000] [-n 255] [-k 239] [-depth 4] [-batch 1]
//	       [-workers 0] [-queue 0] [-channel bsc|burst|none] [-ebn0 6.5]
//	       [-p 0] [-gcm] [-metered] [-seed 1] [-quiet]
//	gfpipe -adaptive [-ladder 251,239,223,191,127]
//	       [-schedule 400:7,600:7>4:burst,400:4>7,400:7]
//	       [-window 0] [-stepup 48]
//
// Examples:
//
//	gfpipe                          # RS(255,239) x4 over a BSC at Eb/N0 6.5dB
//	gfpipe -gcm -channel burst      # sealed frames over a bursty channel
//	gfpipe -depth 1 -metered        # single-codeword frames with cycle accounting
//	gfpipe -workers 1               # serialize every stage (scaling baseline)
//	gfpipe -p 0                     # explicit zero-crossover channel (lossless)
//	gfpipe -adaptive                # rate-adaptive link over a drifting channel
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/adaptive"
	"repro/internal/aes"
	"repro/internal/channel"
	"repro/internal/gf"
	"repro/internal/kernels"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/rs"
)

// cliConfig carries every flag; pSet/framesSet record whether -p/-frames
// were explicitly given (flag.Visit), so `-p 0` means a genuine
// zero-crossover channel instead of falling back to the Eb/N0-derived
// probability.
type cliConfig struct {
	frames     int
	n, k       int
	depth      int
	batch      int
	workers    int
	queue      int
	chName     string
	ebn0       float64
	pOverride  float64
	pSet       bool
	useGCM     bool
	metered    bool
	seed       int64
	quiet      bool
	metricsOut string
	kernelTier string

	adaptiveMode bool
	ladder       string
	schedule     string
	window       int
	stepUp       int
	framesSet    bool
}

// result summarizes a run for CLI-level tests.
type result struct {
	frames    int
	failed    int
	corrected int

	// adaptive mode only
	undetected  int // delivered frames whose payload was silently wrong
	transitions []adaptive.Transition
	epochs      []adaptive.EpochStats
}

func main() {
	var cfg cliConfig
	flag.IntVar(&cfg.frames, "frames", 2000, "frames to push through the pipeline")
	flag.IntVar(&cfg.n, "n", 255, "RS codeword length (symbols, over GF(2^8))")
	flag.IntVar(&cfg.k, "k", 239, "RS message length (symbols)")
	flag.IntVar(&cfg.depth, "depth", 4, "interleaving depth (codewords per frame)")
	flag.IntVar(&cfg.batch, "batch", 1, "interleaver frames packed per pipeline frame (amortizes per-frame handoff)")
	flag.IntVar(&cfg.workers, "workers", 0, "workers per stage (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.queue, "queue", 0, "per-stage queue depth (0 = 2*workers)")
	flag.StringVar(&cfg.chName, "channel", "bsc", "channel model: bsc, burst or none")
	flag.Float64Var(&cfg.ebn0, "ebn0", 6.5, "Eb/N0 (dB) for the BPSK/AWGN flip probability")
	flag.Float64Var(&cfg.pOverride, "p", 0, "explicit crossover probability (overrides -ebn0, 0 is honored)")
	flag.BoolVar(&cfg.useGCM, "gcm", false, "AES-GCM seal before encode, open after decode")
	flag.BoolVar(&cfg.metered, "metered", false, "metered RS decode with cycle accounting (needs -depth 1)")
	flag.Int64Var(&cfg.seed, "seed", 1, "rng seed (payloads and channel)")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress the per-stage table")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write a JSON metrics registry dump to this file on exit")
	flag.BoolVar(&cfg.adaptiveMode, "adaptive", false, "closed-loop rate adaptation over a time-varying channel")
	flag.StringVar(&cfg.ladder, "ladder", "251,239,223,191,127",
		"adaptive: comma-separated k values of the RS(n,k) rate ladder, highest rate first")
	flag.StringVar(&cfg.schedule, "schedule", "400:8,600:8>4:burst,400:4>8,400:8",
		"adaptive: channel schedule, FRAMES:EBN0[>END][:burst],... (frames default to its total)")
	flag.IntVar(&cfg.window, "window", 0, "adaptive: max frames in flight (0 = pipeline queue depth)")
	flag.IntVar(&cfg.stepUp, "stepup", 48, "adaptive: clean frames required before relaxing the code")
	flag.StringVar(&cfg.kernelTier, "kernel-tier", "",
		"force every GF bulk kernel onto one tier: scalar, packed, table, bitsliced, clmul (empty/auto = calibrated per-op selection)")
	flag.Parse()
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "p":
			cfg.pSet = true
		case "frames":
			cfg.framesSet = true
		}
	})

	if _, err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gfpipe:", err)
		os.Exit(1)
	}
}

func run(cfg cliConfig, w io.Writer) (*result, error) {
	if cfg.batch == 0 {
		cfg.batch = 1 // zero value from config literals = unbatched
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tier, err := gf.ParseTier(cfg.kernelTier)
	if err != nil {
		return nil, err
	}
	gf.ForceKernelTier(tier)
	if cfg.adaptiveMode {
		return runAdaptive(cfg, w)
	}
	return runFixed(cfg, w)
}

// validate rejects nonsensical flag combinations up front, before any
// codec tables are built or goroutines started, so the error names the
// flag instead of surfacing as a construction failure deep in a
// subsystem.
func (cfg cliConfig) validate() error {
	if cfg.n <= 0 || cfg.k <= 0 {
		return fmt.Errorf("-n %d and -k %d must be positive", cfg.n, cfg.k)
	}
	if cfg.k >= cfg.n {
		return fmt.Errorf("-k %d must be below -n %d (no parity symbols otherwise)", cfg.k, cfg.n)
	}
	if cfg.depth <= 0 {
		return fmt.Errorf("-depth %d must be positive", cfg.depth)
	}
	if cfg.workers < 0 || cfg.queue < 0 {
		return fmt.Errorf("-workers %d and -queue %d must be non-negative", cfg.workers, cfg.queue)
	}
	if cfg.batch < 0 {
		return fmt.Errorf("-batch %d must be positive", cfg.batch)
	}
	if cfg.metered && cfg.depth != 1 {
		return fmt.Errorf("-metered requires -depth 1 (per-codeword cycle accounting)")
	}
	if cfg.metered && cfg.batch > 1 {
		return fmt.Errorf("-metered requires -batch 1 (per-codeword cycle accounting)")
	}
	if cfg.adaptiveMode && cfg.batch > 1 {
		return fmt.Errorf("-adaptive requires -batch 1 (the feedback window is per frame)")
	}
	if !cfg.adaptiveMode || cfg.framesSet {
		if cfg.frames < 1 {
			return fmt.Errorf("-frames %d: need at least one frame", cfg.frames)
		}
	}
	if cfg.adaptiveMode {
		if cfg.window < 0 {
			return fmt.Errorf("-window %d must be non-negative", cfg.window)
		}
		if cfg.stepUp < 1 {
			return fmt.Errorf("-stepup %d must be positive", cfg.stepUp)
		}
	}
	return nil
}

// runFixed is the original single-code load driver.
func runFixed(cfg cliConfig, w io.Writer) (*result, error) {
	f8 := gf.MustDefault(8)
	code, err := rs.New(f8, cfg.n, cfg.k)
	if err != nil {
		return nil, err
	}
	iv, err := rs.NewInterleaved(code, cfg.depth)
	if err != nil {
		return nil, err
	}

	// -p set explicitly (even to 0) wins; otherwise derive from -ebn0.
	p := cfg.pOverride
	if !cfg.pSet && cfg.chName != "none" {
		p = channel.BPSKBitErrorProb(cfg.ebn0)
	}
	var stages []pipeline.Stage

	var gcm *aes.GCM
	aad := []byte("gfpipe")
	if cfg.useGCM {
		cipher, err := aes.NewCipher([]byte("gfpipe-demo-key!"))
		if err != nil {
			return nil, err
		}
		gcm = cipher.NewGCM()
		stages = append(stages, pipeline.NewSealAEAD(gcm, aad))
	}

	if cfg.depth == 1 {
		enc, err := pipeline.NewRSEncode(code)
		if err != nil {
			return nil, err
		}
		stages = append(stages, enc)
	} else {
		enc, err := pipeline.NewRSFrameEncode(iv)
		if err != nil {
			return nil, err
		}
		stages = append(stages, enc)
	}

	switch cfg.chName {
	case "none":
	case "bsc":
		bsc, err := channel.NewBSC(p, cfg.seed)
		if err != nil {
			return nil, err
		}
		corrupt, err := pipeline.NewCorrupt(bsc, 8, cfg.seed)
		if err != nil {
			return nil, err
		}
		stages = append(stages, corrupt)
	case "burst":
		// A bursty channel with the same average flip rate.
		ge, err := channel.NewBurstAvg(p, cfg.seed)
		if err != nil {
			return nil, err
		}
		corrupt, err := pipeline.NewCorrupt(ge, 8, cfg.seed)
		if err != nil {
			return nil, err
		}
		stages = append(stages, corrupt)
	default:
		return nil, fmt.Errorf("unknown channel %q (want bsc, burst or none)", cfg.chName)
	}

	switch {
	case cfg.metered:
		dec, err := pipeline.NewMeteredRSDecode(code, kernels.GFProc)
		if err != nil {
			return nil, err
		}
		stages = append(stages, dec)
	case cfg.depth == 1:
		dec, err := pipeline.NewRSDecode(code)
		if err != nil {
			return nil, err
		}
		stages = append(stages, dec)
	default:
		dec, err := pipeline.NewRSFrameDecode(iv)
		if err != nil {
			return nil, err
		}
		stages = append(stages, dec)
	}
	if cfg.useGCM {
		stages = append(stages, pipeline.NewOpenAEAD(gcm, aad))
	}

	pl, err := pipeline.New(pipeline.Config{Workers: cfg.workers, Queue: cfg.queue, Batch: cfg.batch}, stages...)
	if err != nil {
		return nil, err
	}

	// Each pipeline frame packs -batch interleaver frames; with -gcm one
	// tag per pipeline frame rides inside the coded payload.
	payloadLen := cfg.batch * iv.FrameK()
	if cfg.useGCM {
		payloadLen -= 16
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	payloads := make([][]byte, cfg.frames)
	for i := range payloads {
		payloads[i] = make([]byte, payloadLen)
		rng.Read(payloads[i])
	}

	pcfg := pl.Config()
	fmt.Fprintf(w, "gfpipe: %d frames x %dB payload, RS(%d,%d) depth %d, batch %d, %d workers/stage, queue %d\n",
		cfg.frames, payloadLen, cfg.n, cfg.k, cfg.depth, cfg.batch, pcfg.Workers, pcfg.Queue)
	if cfg.chName != "none" {
		fmt.Fprintf(w, "channel: %s (bit flip p=%.3e)\n", cfg.chName, p)
	}

	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg)
	pipeline.RegisterGFKernelMetrics(reg)

	start := time.Now()
	got, runErr := pl.Start().Drain(payloads)
	elapsed := time.Since(start)

	// Dump before the failure checks so a failed run still leaves its
	// numbers on disk.
	if cfg.metricsOut != "" {
		if err := dumpRegistry(cfg.metricsOut, reg); err != nil {
			return nil, err
		}
	}

	res := &result{frames: cfg.frames}
	mismatched := 0
	for i, fr := range got {
		if fr.Err != nil {
			res.failed++
			continue
		}
		res.corrected += fr.Corrected
		if len(fr.Data) != payloadLen {
			mismatched++
			continue
		}
		if !bytes.Equal(fr.Data, payloads[i]) {
			mismatched++
		}
		fr.Recycle()
	}
	if mismatched > 0 {
		return res, fmt.Errorf("%d frames round-tripped to wrong bytes", mismatched)
	}

	goodput := float64(payloadLen) * float64(cfg.frames-res.failed) / elapsed.Seconds()
	fmt.Fprintf(w, "\n%-22s %d ok, %d failed (%.3g%% frame loss), %d symbols corrected\n",
		"frames:", cfg.frames-res.failed, res.failed,
		100*float64(res.failed)/float64(cfg.frames), res.corrected)
	fmt.Fprintf(w, "%-22s %v wall, %.0f frames/s (%.0f codewords/s), %.2f MB/s goodput\n",
		"throughput:", elapsed.Round(time.Millisecond),
		float64(cfg.frames)/elapsed.Seconds(),
		float64(cfg.frames*cfg.batch*cfg.depth)/elapsed.Seconds(), goodput/1e6)
	fmt.Fprintf(w, "%-22s %s\n", "end-to-end latency:", pl.Total.String())
	if runErr != nil {
		fmt.Fprintf(w, "%-22s %v\n", "first failure:", runErr)
	}

	if !cfg.quiet {
		fmt.Fprintln(w, "\nper-stage:")
		for _, st := range pl.Stats() {
			fmt.Fprintln(w, "  "+st.String())
		}
	}
	if cfg.metered {
		for _, st := range pl.Stats() {
			counts := st.Counts()
			if counts.Total() == 0 {
				continue
			}
			prof := kernels.GFProc.Profile()
			cyc := counts.Cycles(prof)
			fmt.Fprintf(w, "\nmetered %s (%s): %d ops, %d cycles total, %.0f cycles/frame, %d GF SIMD ops\n",
				st.Name, prof.Name, counts.Total(), cyc, float64(cyc)/float64(cfg.frames), counts.GFOp)
		}
	}

	// Surface the parallelism actually available so scaling numbers are
	// interpretable when pasted into reports.
	fmt.Fprintf(w, "\nhost: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	return res, nil
}

// dumpRegistry writes the registry's JSON snapshot to path.
func dumpRegistry(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics-out: %w", err)
	}
	return f.Close()
}

// parseLadder parses the -ladder k list.
func parseLadder(s string) ([]int, error) {
	var ks []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad ladder entry %q", part)
		}
		ks = append(ks, k)
	}
	return ks, nil
}

// runAdaptive runs the closed-loop rate-adaptive link.
func runAdaptive(cfg cliConfig, w io.Writer) (*result, error) {
	episodes, err := channel.ParseSchedule(cfg.schedule)
	if err != nil {
		return nil, err
	}
	tv, err := channel.NewTimeVarying(episodes, cfg.seed)
	if err != nil {
		return nil, err
	}
	frames := tv.TotalFrames()
	if cfg.framesSet {
		frames = cfg.frames
	}
	ks, err := parseLadder(cfg.ladder)
	if err != nil {
		return nil, err
	}
	f8 := gf.MustDefault(8)
	ladder, err := adaptive.NewLadder(f8, cfg.n, ks, cfg.depth)
	if err != nil {
		return nil, err
	}
	ctrl, err := adaptive.NewController(ladder, 0, adaptive.Config{StepUpAfter: cfg.stepUp})
	if err != nil {
		return nil, err
	}
	enc, err := adaptive.NewEncodeStage(ctrl)
	if err != nil {
		return nil, err
	}
	dec, err := adaptive.NewDecodeStage(ctrl)
	if err != nil {
		return nil, err
	}
	corrupt, err := pipeline.NewCorruptTV(tv, 8)
	if err != nil {
		return nil, err
	}
	pl, err := pipeline.New(pipeline.Config{Workers: cfg.workers, Queue: cfg.queue},
		enc, corrupt, dec)
	if err != nil {
		return nil, err
	}

	pcfg := pl.Config()
	fmt.Fprintf(w, "gfpipe adaptive: ladder %s, %d workers/stage, queue %d\n",
		ladder, pcfg.Workers, pcfg.Queue)
	fmt.Fprintf(w, "channel: %s\n", tv.Description())

	// Per-seq deterministic payloads, retained until delivery for
	// round-trip verification.
	pending := make(map[uint64][]byte)
	mismatched := 0
	drv := &adaptive.Driver{
		Ctrl:   ctrl,
		Window: cfg.window,
		Payload: func(seq uint64, size int) []byte {
			rng := rand.New(rand.NewSource(cfg.seed ^ int64((seq+1)*0x9E3779B9)))
			b := make([]byte, size)
			rng.Read(b)
			pending[seq] = b
			return b
		},
		OnFrame: func(f *pipeline.Frame) {
			want := pending[f.Seq]
			delete(pending, f.Seq)
			if f.Err == nil && !bytes.Equal(f.Data, want) {
				mismatched++
			}
			f.Recycle()
		},
	}

	reg := obs.NewRegistry()
	pl.RegisterMetrics(reg)
	pipeline.RegisterGFKernelMetrics(reg)
	ctrl.RegisterMetrics(reg)
	drv.RegisterMetrics(reg)

	start := time.Now()
	epochs, err := drv.Run(pl, frames)
	elapsed := time.Since(start)
	if cfg.metricsOut != "" {
		if derr := dumpRegistry(cfg.metricsOut, reg); derr != nil && err == nil {
			err = derr
		}
	}
	if err != nil {
		return nil, err
	}

	// A decode "success" past the code's bound can be a miscorrection —
	// the decoder lands on a wrong codeword and delivers wrong bytes
	// undetected. A real receiver can't see these without an outer check
	// (CRC or AEAD); here the loopback harness can, so report them as
	// the residual undetected-error rate instead of aborting.
	res := &result{frames: frames, undetected: mismatched,
		transitions: ctrl.Transitions(), epochs: epochs}
	var payloadBytes, channelBytes int64
	for _, e := range epochs {
		res.failed += e.Failed
		res.corrected += e.Corrected
		payloadBytes += e.PayloadBytes
		channelBytes += e.ChannelBytes
	}

	fmt.Fprintf(w, "\nrate trajectory (%d transitions):\n", len(res.transitions))
	if len(res.transitions) == 0 {
		fmt.Fprintln(w, "  (none — the channel never pushed the code off its rung)")
	}
	for _, tr := range res.transitions {
		fmt.Fprintf(w, "  %s, now %s\n", tr, ladder.Rung(tr.To))
	}

	fmt.Fprintln(w, "\nper-epoch:")
	for _, e := range epochs {
		fmt.Fprintf(w, "  epoch %-3d %-16s frames %-6d (seq %d-%d) failed %-5d (%.3g%%) corrected %-7d goodput %.3f\n",
			e.Epoch, ladder.Rung(e.Rung), e.Frames, e.FirstSeq, e.LastSeq,
			e.Failed, 100*e.FailureRate(), e.Corrected, e.Goodput())
	}

	overall := 0.0
	if channelBytes > 0 {
		overall = float64(payloadBytes) / float64(channelBytes)
	}
	fmt.Fprintf(w, "\n%-22s %d ok, %d failed (%.3g%% frame loss), %d symbols corrected\n",
		"frames:", frames-res.failed, res.failed,
		100*float64(res.failed)/float64(frames), res.corrected)
	fmt.Fprintf(w, "%-22s %d frames delivered with undetected wrong bytes (miscorrections past the bound)\n",
		"residual:", res.undetected)
	fmt.Fprintf(w, "%-22s %.3f payload bytes per channel byte (%.2f MB/s delivered)\n",
		"goodput:", overall, float64(payloadBytes)/elapsed.Seconds()/1e6)
	fmt.Fprintf(w, "%-22s %v wall, %.0f frames/s\n",
		"throughput:", elapsed.Round(time.Millisecond), float64(frames)/elapsed.Seconds())
	fmt.Fprintf(w, "%-22s %s\n", "end-to-end latency:", pl.Total.String())

	if !cfg.quiet {
		fmt.Fprintln(w, "\nper-stage:")
		for _, st := range pl.Stats() {
			fmt.Fprintln(w, "  "+st.String())
		}
	}
	fmt.Fprintf(w, "\nhost: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	return res, nil
}
