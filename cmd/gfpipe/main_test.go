package main

import (
	"encoding/json"
	"io"
	"os"
	"reflect"
	"strings"
	"testing"
)

func baseConfig() cliConfig {
	return cliConfig{
		frames: 40, n: 255, k: 239, depth: 2,
		workers: 2, queue: 4,
		chName: "bsc", ebn0: 6.5,
		seed:  1,
		quiet: true,
		// adaptive defaults (unused unless adaptiveMode)
		ladder:   "251,239,223,191,127",
		schedule: "30:8,40:8>4:burst,30:4>8",
		stepUp:   8,
	}
}

// TestExplicitZeroCrossover: `-p 0` must mean a genuinely error-free
// channel. Regression: p == 0 used to be indistinguishable from "flag
// unset" and silently fell back to the Eb/N0-derived probability.
func TestExplicitZeroCrossover(t *testing.T) {
	cfg := baseConfig()
	cfg.ebn0 = 0.5 // ~8% raw BER: would corrupt heavily if -p 0 were ignored
	cfg.pSet = true
	cfg.pOverride = 0
	res, err := run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.failed != 0 || res.corrected != 0 {
		t.Fatalf("explicit -p 0: %d failed, %d corrected; want a clean channel",
			res.failed, res.corrected)
	}

	// Same operating point without -p: the Eb/N0 fallback must still
	// corrupt (and at 0.5dB with t=8, visibly so).
	cfg.pSet = false
	res, err = run(cfg, io.Discard)
	if err == nil && res.corrected == 0 && res.failed == 0 {
		t.Fatal("Eb/N0 fallback no longer corrupts; the -p test is vacuous")
	}
}

// TestExplicitNonzeroCrossover: an explicit -p still overrides -ebn0.
func TestExplicitNonzeroCrossover(t *testing.T) {
	cfg := baseConfig()
	cfg.ebn0 = 12 // essentially clean if the override were dropped
	cfg.pSet = true
	cfg.pOverride = 0.004
	res, err := run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.corrected == 0 {
		t.Fatal("explicit -p 0.004 produced no corrections; override ignored")
	}
}

// TestAdaptiveWalksLadderDeterministically is the CLI-level acceptance
// check: over a degrade-then-recover schedule the run must step down
// the rate ladder during the degraded episode and back up after it,
// with epoch stats covering every frame — and two identically seeded
// runs must produce the identical trajectory and stats.
func TestAdaptiveWalksLadderDeterministically(t *testing.T) {
	cfg := baseConfig()
	cfg.adaptiveMode = true
	cfg.schedule = "60:8,120:8>4:burst,120:4>8"
	cfg.stepUp = 16

	var sb strings.Builder
	res1, err := run(cfg, &sb)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.transitions, res2.transitions) {
		t.Fatalf("trajectories diverged across identical runs:\n%v\n%v",
			res1.transitions, res2.transitions)
	}
	if !reflect.DeepEqual(res1.epochs, res2.epochs) {
		t.Fatal("epoch stats diverged across identical runs")
	}

	var downs, ups int
	for _, tr := range res1.transitions {
		if tr.To > tr.From {
			downs++
		} else {
			ups++
		}
	}
	if downs == 0 || ups == 0 {
		t.Fatalf("trajectory %v: want steps down during degradation and back up after",
			res1.transitions)
	}
	frames := 0
	for _, e := range res1.epochs {
		frames += e.Frames
	}
	if frames != 300 {
		t.Fatalf("epoch stats cover %d frames, want 300", frames)
	}
	out := sb.String()
	for _, want := range []string{"rate trajectory", "per-epoch", "goodput"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q section", want)
		}
	}
}

// TestAdaptiveFramesOverride: an explicit -frames runs past the
// schedule's end (clamped to the last operating point).
func TestAdaptiveFramesOverride(t *testing.T) {
	cfg := baseConfig()
	cfg.adaptiveMode = true
	cfg.schedule = "40:8"
	cfg.frames = 70
	cfg.framesSet = true
	res, err := run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.frames != 70 {
		t.Fatalf("ran %d frames, want 70", res.frames)
	}
}

func TestBadFlags(t *testing.T) {
	cfg := baseConfig()
	cfg.chName = "plasma"
	if _, err := run(cfg, io.Discard); err == nil {
		t.Error("unknown channel accepted")
	}
	cfg = baseConfig()
	cfg.adaptiveMode = true
	cfg.ladder = "239,abc"
	if _, err := run(cfg, io.Discard); err == nil {
		t.Error("bad ladder accepted")
	}
	cfg = baseConfig()
	cfg.adaptiveMode = true
	cfg.schedule = "nope"
	if _, err := run(cfg, io.Discard); err == nil {
		t.Error("bad schedule accepted")
	}
}

// TestValidateRejectsBadCombos: every nonsensical flag combination must
// be refused up front with an error naming the flag, before any codec
// construction runs.
func TestValidateRejectsBadCombos(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*cliConfig)
		want   string // substring the error must carry
	}{
		{"zero n", func(c *cliConfig) { c.n = 0 }, "-n"},
		{"negative k", func(c *cliConfig) { c.k = -1 }, "-k"},
		{"k at n", func(c *cliConfig) { c.k = c.n }, "below"},
		{"k above n", func(c *cliConfig) { c.k = c.n + 1 }, "below"},
		{"zero depth", func(c *cliConfig) { c.depth = 0 }, "-depth"},
		{"negative workers", func(c *cliConfig) { c.workers = -1 }, "-workers"},
		{"negative queue", func(c *cliConfig) { c.queue = -3 }, "-queue"},
		{"metered at depth 4", func(c *cliConfig) { c.metered = true; c.depth = 4 }, "-metered"},
		{"zero frames", func(c *cliConfig) { c.frames = 0 }, "-frames"},
		{"adaptive zero frames", func(c *cliConfig) {
			c.adaptiveMode = true
			c.framesSet = true
			c.frames = 0
		}, "-frames"},
		{"adaptive negative window", func(c *cliConfig) { c.adaptiveMode = true; c.window = -1 }, "-window"},
		{"adaptive zero stepup", func(c *cliConfig) { c.adaptiveMode = true; c.stepUp = 0 }, "-stepup"},
	}
	for _, tc := range cases {
		cfg := baseConfig()
		tc.mutate(&cfg)
		_, err := run(cfg, io.Discard)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateAcceptsDefaults: the flag defaults themselves must pass
// validation in both modes.
func TestValidateAcceptsDefaults(t *testing.T) {
	cfg := baseConfig()
	if err := cfg.validate(); err != nil {
		t.Errorf("fixed-mode defaults rejected: %v", err)
	}
	cfg.adaptiveMode = true
	if err := cfg.validate(); err != nil {
		t.Errorf("adaptive-mode defaults rejected: %v", err)
	}
}

// TestMetricsOutDump: -metrics-out leaves a JSON registry dump on disk
// with the pipeline stage instruments populated.
func TestMetricsOutDump(t *testing.T) {
	cfg := baseConfig()
	cfg.metricsOut = t.TempDir() + "/metrics.json"
	if _, err := run(cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var metrics []struct {
		Name    string `json:"name"`
		Kind    string `json:"kind"`
		Samples []struct {
			Value float64 `json:"value"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	byName := map[string]float64{}
	for _, m := range metrics {
		if len(m.Samples) > 0 {
			byName[m.Name] = m.Samples[0].Value
		}
	}
	if got := byName["gfp_pipeline_stage_frames_total"]; got != float64(cfg.frames) {
		t.Errorf("stage frames = %g, want %d", got, cfg.frames)
	}
	if _, ok := byName["gfp_gf_kernel_calls_total"]; !ok {
		t.Error("dump missing gfp_gf_kernel_calls_total")
	}
}

// TestMetricsOutAdaptive: the adaptive run's dump includes controller
// and driver instruments.
func TestMetricsOutAdaptive(t *testing.T) {
	cfg := baseConfig()
	cfg.adaptiveMode = true
	cfg.workers, cfg.queue, cfg.window = 1, 2, 2
	cfg.metricsOut = t.TempDir() + "/metrics.json"
	if _, err := run(cfg, io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cfg.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gfp_adaptive_rung", "gfp_adaptive_frames_delivered_total",
		"gfp_adaptive_goodput", "gfp_pipeline_stage_frames_total",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("adaptive dump missing %s", want)
		}
	}
}
