// Command gfserved serves the GF codec pipeline over TCP: a
// length-prefixed binary protocol (see docs/SERVER.md) carrying
// rs-encode / rs-decode / aes-gcm-seal / aes-gcm-open / stats requests
// plus the binary-field ECC ops (ecdh-derive / ecdsa-sign /
// ecdsa-verify / secure-session, on -curve) from many concurrent
// connections, multiplexed into one shared internal/pipeline run and
// answered out of order by request id.
//
// The codec knobs mirror cmd/gfpipe: one RS(n,k) code over GF(2^8),
// interleaved to -depth, with per-stage worker pools sized by -workers
// and -queue. SIGINT/SIGTERM triggers a graceful shutdown — the
// listener closes, every in-flight request drains to its connection,
// and a final stats snapshot is printed.
//
// Usage:
//
//	gfserved [-addr :4650] [-n 255] [-k 239] [-depth 1] [-workers 0]
//	         [-queue 0] [-window 32] [-max-payload 1048576]
//	         [-key STRING] [-curve K-233] [-ecc-key STRING]
//	         [-read-timeout 2m] [-write-timeout 30s]
//	         [-grace 30s] [-quiet] [-admin ADDR] [-progress DUR]
//	         [-trace-every 64] [-trace-slowest 16] [-trace-ring 256]
//	         [-log-format text|json] [-slo SPEC] [-slo-window 1m]
//	         [-wide-every N]
//
// Examples:
//
//	gfserved                        # RS(255,239) on :4650
//	gfserved -n 255 -k 223 -depth 4 # deeper code, interleaved frames
//	gfserved -addr 127.0.0.1:0      # ephemeral port (printed on start)
//	gfserved -admin :9090           # /metrics, /healthz, /statsz, /tracez, pprof
//	gfserved -progress 5s           # one summary line every 5s
//	gfserved -log-format json -wide-every 100   # wide events, JSON logs
//	gfserved -slo 'ecdsa-sign=5ms@99.9,default=2ms@99'  # error budgets
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/gf"
	"repro/internal/obs"
	"repro/internal/server"
)

type cliConfig struct {
	addr         string
	n, k         int
	depth        int
	workers      int
	queue        int
	batch        int
	window       int
	maxPayload   int
	key          string
	curve        string
	eccKey       string
	readTimeout  time.Duration
	writeTimeout time.Duration
	grace        time.Duration
	quiet        bool
	adminAddr    string
	progress     time.Duration
	traceEvery   int
	traceSlowest int
	traceRing    int
	kernelTier   string
	logFormat    string
	slo          string
	sloWindow    time.Duration
	wideEvery    int
}

// newLogger builds the process logger: structured slog on stderr, text
// (the human-friendly default) or JSON (one machine-parseable object
// per line — the shape log pipelines ingest wide events in).
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// syncWriter serializes writes so the progress goroutine and the main
// goroutine can share one output stream without interleaving lines.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (sw *syncWriter) Write(p []byte) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Write(p)
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.addr, "addr", ":4650", "TCP listen address")
	flag.IntVar(&cfg.n, "n", 255, "RS codeword length (symbols, over GF(2^8))")
	flag.IntVar(&cfg.k, "k", 239, "RS message length (symbols)")
	flag.IntVar(&cfg.depth, "depth", 1, "interleaving depth (codewords per frame)")
	flag.IntVar(&cfg.batch, "batch", 1, "max interleaver frames per RS request (payload = multiple of the frame unit)")
	flag.IntVar(&cfg.workers, "workers", 0, "pipeline workers per stage (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.queue, "queue", 0, "pipeline queue depth (0 = 2*workers)")
	flag.IntVar(&cfg.window, "window", 32, "max in-flight requests per connection")
	flag.IntVar(&cfg.maxPayload, "max-payload", server.DefaultMaxPayload, "max request payload bytes")
	flag.StringVar(&cfg.key, "key", "", "AES key for seal/open (16/24/32 bytes; empty = demo key)")
	flag.StringVar(&cfg.curve, "curve", "",
		"binary curve for the ECC ops: K-163, B-163, K-233, B-233, K-283 (empty = "+server.DefaultCurve+"; off = disabled)")
	flag.StringVar(&cfg.eccKey, "ecc-key", "",
		"seed for the deterministic ECC signing scalar (empty = derive from -key; share it across a fleet for identical signatures)")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 2*time.Minute, "per-connection idle limit (0 = none)")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 30*time.Second, "per-response write limit (0 = none)")
	flag.DurationVar(&cfg.grace, "grace", 30*time.Second, "shutdown drain budget before connections are cut")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress the final stats snapshot")
	flag.StringVar(&cfg.adminAddr, "admin", "", "admin HTTP listen address for /metrics, /healthz, /statsz and /debug/pprof (empty = off)")
	flag.DurationVar(&cfg.progress, "progress", 0, "print a one-line stats summary at this interval (0 = off)")
	flag.IntVar(&cfg.traceEvery, "trace-every", 64, "sample every Nth frame for lifecycle tracing (1 = all, 0 = off)")
	flag.IntVar(&cfg.traceSlowest, "trace-slowest", 16, "slowest traced frames kept for /statsz")
	flag.IntVar(&cfg.traceRing, "trace-ring", 0, "distributed-trace spans retained for /tracez (0 = 256)")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "stderr log format: text or json")
	flag.StringVar(&cfg.slo, "slo", "", "latency objectives, op=threshold@percent comma-separated (e.g. 'ecdsa-sign=5ms@99.9,default=2ms@99'; empty = off)")
	flag.DurationVar(&cfg.sloWindow, "slo-window", time.Minute, "rolling window for the SLO error-budget burn rate")
	flag.IntVar(&cfg.wideEvery, "wide-every", 0, "emit a structured wide event for every traced request plus one in N untraced completions (0 = wide events off)")
	flag.StringVar(&cfg.kernelTier, "kernel-tier", "",
		"force every GF bulk kernel onto one tier: scalar, packed, table, bitsliced, clmul (empty/auto = calibrated per-op selection)")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gfserved:", err)
		os.Exit(1)
	}
}

func run(cfg cliConfig, out io.Writer) error {
	w := &syncWriter{w: out}
	logger, err := newLogger(cfg.logFormat)
	if err != nil {
		return err
	}
	logger = logger.With(slog.String("proc", "gfserved"))
	objectives, err := obs.ParseObjectives(cfg.slo)
	if err != nil {
		return err
	}
	var wideLog *slog.Logger
	if cfg.wideEvery > 0 {
		wideLog = logger
	}
	tier, err := gf.ParseTier(cfg.kernelTier)
	if err != nil {
		return err
	}
	gf.ForceKernelTier(tier)
	s, err := server.New(server.Config{
		N: cfg.n, K: cfg.k, Depth: cfg.depth, Batch: cfg.batch,
		Workers: cfg.workers, Queue: cfg.queue,
		Key:         []byte(cfg.key),
		Curve:       cfg.curve,
		ECCKey:      []byte(cfg.eccKey),
		MaxPayload:  cfg.maxPayload,
		Window:      cfg.window,
		ReadTimeout: cfg.readTimeout, WriteTimeout: cfg.writeTimeout,
		TraceEvery: cfg.traceEvery, TraceSlowest: cfg.traceSlowest,
		TraceRing: cfg.traceRing,
		SLO:       obs.NewSLO(objectives, cfg.sloWindow),
		WideLog:   wideLog,
		WideEvery: cfg.wideEvery,
		Logf: func(format string, args ...any) {
			logger.Warn(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)

	if cfg.adminAddr != "" {
		aln, err := net.Listen("tcp", cfg.adminAddr)
		if err != nil {
			return fmt.Errorf("admin listen: %w", err)
		}
		admin := &http.Server{Handler: s.AdminHandler(reg)}
		go admin.Serve(aln)
		defer admin.Close()
		fmt.Fprintf(w, "gfserved: admin on http://%s — /metrics /healthz /statsz /tracez /debug/pprof\n", aln.Addr())
	}

	if cfg.progress > 0 {
		progressDone := make(chan struct{})
		progressStop := make(chan struct{})
		go func() {
			defer close(progressDone)
			progressLoop(w, reg, cfg.progress, progressStop)
		}()
		defer func() { close(progressStop); <-progressDone }()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- s.ListenAndServe(cfg.addr)
	}()

	// Wait for the listener so the printed address is real (matters for
	// -addr :0); New has already built the pipeline, so a bind error is
	// the only thing that can race us here.
	for s.Addr() == nil {
		select {
		case err := <-serveErr:
			return err
		default:
			time.Sleep(time.Millisecond)
		}
	}
	snap := s.Snapshot()
	fmt.Fprintf(w, "gfserved: listening on %s — RS(%d,%d) depth %d, %d workers, window %d\n",
		s.Addr(), snap.Config.N, snap.Config.K, snap.Config.Depth,
		snap.Config.Workers, snap.Config.Window)
	if e := snap.Config.ECC; e != nil {
		fmt.Fprintf(w, "gfserved: ecc on %s (mul=%s) — pub %s\n", e.Curve, e.MulStrategy, e.PublicKey)
	}

	select {
	case sig := <-stop:
		fmt.Fprintf(w, "gfserved: %v — draining (budget %v)\n", sig, cfg.grace)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.grace)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-serveErr // Serve returns nil once the listener closes
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}

	if !cfg.quiet {
		final := s.Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(final); err != nil {
			return err
		}
	}
	return nil
}

// progressLoop prints one summary line per interval out of the metrics
// registry: the request ledger, live connections, traced frames and the
// pipeline p95 latency.
func progressLoop(w io.Writer, reg *obs.Registry, interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		req, _ := reg.Value("gfp_server_requests_total")
		resp, _ := reg.Value("gfp_server_responses_total")
		rej, _ := reg.Value("gfp_server_rejects_total")
		drop, _ := reg.Value("gfp_server_dropped_total")
		conns, _ := reg.Value("gfp_server_connections_active")
		line := fmt.Sprintf("gfserved: req=%.0f resp=%.0f rej=%.0f drop=%.0f conns=%.0f",
			req, resp, rej, drop, conns)
		if traced, ok := reg.Value("gfp_pipeline_traced_frames_total"); ok {
			line += fmt.Sprintf(" traced=%.0f", traced)
		}
		if h, ok := reg.HistValue("gfp_pipeline_latency_seconds"); ok && h.Count > 0 {
			line += fmt.Sprintf(" p95=%s", time.Duration(h.Quantile(0.95)))
		}
		fmt.Fprintln(w, line)
	}
}
