package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// lockedBuf lets the test read output while run's goroutines write it.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitMatch polls the buffer until re's first capture group appears.
func waitMatch(t *testing.T, out *lockedBuf, re *regexp.Regexp) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("output never matched %v:\n%s", re, out.String())
	return ""
}

// TestServeAdminProgressAndDrain runs the whole daemon in-process:
// ephemeral data and admin listeners, progress lines on, full-rate
// tracing — drives traffic, scrapes the admin endpoints, then SIGINTs
// the process and checks the drain path and final snapshot.
func TestServeAdminProgressAndDrain(t *testing.T) {
	out := &lockedBuf{}
	cfg := cliConfig{
		addr: "127.0.0.1:0", n: 255, k: 239, depth: 1,
		window: 8, maxPayload: server.DefaultMaxPayload,
		readTimeout: time.Minute, writeTimeout: 30 * time.Second,
		grace:     10 * time.Second,
		adminAddr: "127.0.0.1:0", progress: 20 * time.Millisecond,
		traceEvery: 1, traceSlowest: 4,
	}
	done := make(chan error, 1)
	go func() { done <- run(cfg, out) }()

	addr := waitMatch(t, out, regexp.MustCompile(`listening on ([0-9.:]+)`))
	adminURL := waitMatch(t, out, regexp.MustCompile(`admin on (http://[0-9.:]+)`))

	c, err := server.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := c.RSEncode(make([]byte, 239)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(adminURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "gfp_server_requests_total 8") ||
		!strings.Contains(body, "gfp_pipeline_traced_frames_total 8") {
		t.Errorf("/metrics = %d, missing expected series:\n%s", code, body)
	}
	if code, body := get("/statsz"); code != http.StatusOK || !strings.Contains(body, `"metrics"`) {
		t.Errorf("/statsz = %d %q", code, body)
	}

	// A progress line must appear on its own cadence.
	waitMatch(t, out, regexp.MustCompile(`(req=8)`))

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not drain after SIGINT:\n%s", out.String())
	}
	final := out.String()
	if !strings.Contains(final, "draining") || !strings.Contains(final, `"requests": 8`) {
		t.Errorf("final output missing drain line or snapshot:\n%s", final)
	}
}
