// Command gfcodec exercises the library end-to-end from the shell:
// Reed-Solomon / BCH encode-decode round trips through a noisy channel,
// AES encryption, and an ECDH handshake — the three application domains
// the GF processor unifies.
//
// Usage:
//
//	gfcodec rs   [-n 255] [-k 239] [-errors 8] [-seed 1] [-msg hex]
//	gfcodec bch  [-m 5] [-t 5] [-errors 5] [-seed 1]
//	gfcodec aes  [-key hex16|24|32] [-mode ecb|ctr|cbc] [-iv hex16] -msg hex
//	gfcodec ecdh [-curve K-233] [-seed 1]
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/aes"
	"repro/internal/bch"
	"repro/internal/ecc"
	"repro/internal/gf"
	"repro/internal/rs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "rs":
		runRS(os.Args[2:])
	case "bch":
		runBCH(os.Args[2:])
	case "aes":
		runAES(os.Args[2:])
	case "ecdh":
		runECDH(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gfcodec {rs|bch|aes|ecdh} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfcodec:", err)
	os.Exit(1)
}

func runRS(args []string) {
	fs := flag.NewFlagSet("rs", flag.ExitOnError)
	n := fs.Int("n", 255, "codeword length")
	k := fs.Int("k", 239, "information symbols")
	nerr := fs.Int("errors", 8, "symbol errors to inject")
	seed := fs.Int64("seed", 1, "rng seed")
	msgHex := fs.String("msg", "", "message hex (padded/truncated to k bytes; random if empty)")
	fs.Parse(args)

	f := gf.MustDefault(8)
	code, err := rs.New(f, *n, *k)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	msg := make([]byte, *k)
	if *msgHex != "" {
		b, err := hex.DecodeString(*msgHex)
		if err != nil {
			fatal(err)
		}
		copy(msg, b)
	} else {
		rng.Read(msg)
	}
	cw, err := code.EncodeBytes(msg)
	if err != nil {
		fatal(err)
	}
	recv := append([]byte(nil), cw...)
	pos := rng.Perm(*n)[:*nerr]
	for _, p := range pos {
		recv[p] ^= byte(1 + rng.Intn(255))
	}
	fmt.Printf("%v\n", code)
	fmt.Printf("injected %d symbol errors at %v\n", *nerr, pos)
	got, err := code.DecodeBytes(recv)
	if err != nil {
		fatal(err)
	}
	ok := string(got) == string(msg)
	fmt.Printf("decode successful, message recovered: %v\n", ok)
	if !ok {
		os.Exit(1)
	}
}

func runBCH(args []string) {
	fs := flag.NewFlagSet("bch", flag.ExitOnError)
	m := fs.Int("m", 5, "field degree (n = 2^m - 1)")
	t := fs.Int("t", 5, "error-correcting capability")
	nerr := fs.Int("errors", 5, "bit errors to inject")
	seed := fs.Int64("seed", 1, "rng seed")
	fs.Parse(args)

	f, err := gf.NewDefault(*m)
	if err != nil {
		fatal(err)
	}
	code, err := bch.New(f, *t)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	msg := make([]byte, code.K)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	cw, err := code.Encode(msg)
	if err != nil {
		fatal(err)
	}
	recv := append([]byte(nil), cw...)
	pos := rng.Perm(code.N)[:*nerr]
	for _, p := range pos {
		recv[p] ^= 1
	}
	fmt.Printf("%v\n", code)
	fmt.Printf("injected %d bit errors at %v\n", *nerr, pos)
	res, err := code.Decode(recv)
	if err != nil {
		fatal(err)
	}
	ok := true
	for i := range msg {
		if res.Message[i] != msg[i] {
			ok = false
		}
	}
	fmt.Printf("decode corrected %d bits at %v; message recovered: %v\n",
		res.NumErrors, res.Positions, ok)
	if !ok {
		os.Exit(1)
	}
}

func runAES(args []string) {
	fs := flag.NewFlagSet("aes", flag.ExitOnError)
	keyHex := fs.String("key", "000102030405060708090a0b0c0d0e0f", "key hex (16/24/32 bytes)")
	mode := fs.String("mode", "ecb", "ecb, ctr or cbc")
	ivHex := fs.String("iv", strings.Repeat("00", 16), "iv hex (ctr/cbc)")
	msgHex := fs.String("msg", "00112233445566778899aabbccddeeff", "plaintext hex")
	fs.Parse(args)

	key, err := hex.DecodeString(*keyHex)
	if err != nil {
		fatal(err)
	}
	iv, err := hex.DecodeString(*ivHex)
	if err != nil {
		fatal(err)
	}
	msg, err := hex.DecodeString(*msgHex)
	if err != nil {
		fatal(err)
	}
	c, err := aes.NewCipher(key)
	if err != nil {
		fatal(err)
	}
	switch *mode {
	case "ecb":
		if len(msg)%16 != 0 {
			fatal(fmt.Errorf("ecb needs 16-byte-aligned input"))
		}
		ct := make([]byte, len(msg))
		for off := 0; off < len(msg); off += 16 {
			c.Encrypt(ct[off:off+16], msg[off:off+16])
		}
		fmt.Printf("ciphertext: %x\n", ct)
	case "ctr":
		ct := make([]byte, len(msg))
		if err := c.EncryptCTR(ct, msg, iv); err != nil {
			fatal(err)
		}
		fmt.Printf("ciphertext: %x\n", ct)
	case "cbc":
		ct := make([]byte, len(msg))
		if err := c.EncryptCBC(ct, msg, iv); err != nil {
			fatal(err)
		}
		fmt.Printf("ciphertext: %x\n", ct)
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func runECDH(args []string) {
	fs := flag.NewFlagSet("ecdh", flag.ExitOnError)
	name := fs.String("curve", "NIST K-233", "curve name (see gfcodec ecdh -curve list)")
	seed := fs.Int64("seed", 1, "rng seed (demo only — not secure entropy)")
	fs.Parse(args)

	if *name == "list" {
		for _, c := range ecc.Curves() {
			fmt.Println(c.Name)
		}
		return
	}
	var curve *ecc.Curve
	for _, c := range ecc.Curves() {
		if c.Name == *name {
			curve = c
		}
	}
	if curve == nil {
		fatal(fmt.Errorf("unknown curve %q (try -curve list)", *name))
	}
	rng := rand.New(rand.NewSource(*seed))
	alice, err := ecc.GenerateKey(curve, rng)
	if err != nil {
		fatal(err)
	}
	bob, err := ecc.GenerateKey(curve, rng)
	if err != nil {
		fatal(err)
	}
	s1, err := alice.SharedSecret(bob.Pub)
	if err != nil {
		fatal(err)
	}
	s2, err := bob.SharedSecret(alice.Pub)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("curve: %s\n", curve)
	fmt.Printf("alice public x: %s\n", curve.F.Hex(alice.Pub.X))
	fmt.Printf("bob   public x: %s\n", curve.F.Hex(bob.Pub.X))
	fmt.Printf("shared secret:  %x\n", s1)
	fmt.Printf("secrets agree:  %v\n", string(s1) == string(s2))
}
