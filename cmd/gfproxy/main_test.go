package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// lockedBuf lets the test read output while run's goroutines write it.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitMatch polls the buffer until re's first capture group appears.
func waitMatch(t *testing.T, out *lockedBuf, re *regexp.Regexp) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("output never matched %v:\n%s", re, out.String())
	return ""
}

// startBackend runs a real gfserved-shaped server with an admin plane
// for the proxy to route to and scrape.
func startBackend(t *testing.T) (gfp1Addr, adminAddr string) {
	t.Helper()
	s, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	admin := &http.Server{Handler: s.AdminHandler(reg)}
	go s.Serve(ln)
	go admin.Serve(aln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		admin.Close()
	})
	return ln.Addr().String(), aln.Addr().String()
}

// TestProxyServeAdminAndDrain runs the whole daemon in-process against
// two live backends: routes traffic, scrapes the aggregated admin
// endpoints, then SIGINTs the process and checks the drain path and
// final snapshot.
func TestProxyServeAdminAndDrain(t *testing.T) {
	a1, adm1 := startBackend(t)
	a2, adm2 := startBackend(t)

	out := &lockedBuf{}
	cfg := cliConfig{
		addr:           "127.0.0.1:0",
		backends:       a1 + "@" + adm1 + "," + a2 + "@" + adm2,
		adminAddr:      "127.0.0.1:0",
		retries:        2,
		pool:           2,
		window:         8,
		maxPayload:     server.DefaultMaxPayload,
		route:          "request",
		healthInterval: 50 * time.Millisecond,
		healthTimeout:  time.Second,
		failAfter:      2,
		readmitAfter:   2,
		dialWait:       time.Second,
		forwardTimeout: 10 * time.Second,
		readTimeout:    time.Minute,
		writeTimeout:   30 * time.Second,
		grace:          10 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- run(cfg, out) }()

	addr := waitMatch(t, out, regexp.MustCompile(`listening on ([0-9.:]+)`))
	adminURL := waitMatch(t, out, regexp.MustCompile(`admin on (http://[0-9.:]+)`))

	c, err := server.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := c.RSEncode(make([]byte, 239)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(adminURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "gfp_proxy_requests_total 16") ||
		!strings.Contains(body, "gfp_server_requests_total 16") { // merged fleet family
		t.Errorf("/metrics = %d, missing expected series:\n%s", code, body)
	}
	if code, body := get("/statsz"); code != http.StatusOK ||
		!strings.Contains(body, `"scraped": 2`) {
		t.Errorf("/statsz = %d, missing fleet scrape:\n%s", code, body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not drain after SIGINT:\n%s", out.String())
	}
	final := out.String()
	if !strings.Contains(final, "draining") || !strings.Contains(final, `"requests": 16`) {
		t.Errorf("final output missing drain line or snapshot:\n%s", final)
	}
}

// TestBadFlags covers the CLI validation paths.
func TestBadFlags(t *testing.T) {
	if err := run(cliConfig{}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-backends") {
		t.Errorf("no backends: err = %v", err)
	}
	if err := run(cliConfig{backends: "a:1", route: "zigzag"}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "-route") {
		t.Errorf("bad route: err = %v", err)
	}
	if err := run(cliConfig{backends: "a:1,@bad", route: "conn"}, io.Discard); err == nil {
		t.Errorf("bad backend spec: err = %v", err)
	}
}
