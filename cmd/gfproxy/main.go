// Command gfproxy is the GFP1 routing front door for a fleet of
// gfserved backends (see docs/CLUSTER.md): it terminates client
// connections, consistent-hashes each request onto one of N backends,
// health-checks the fleet (ejecting dead backends and readmitting
// recovered ones), transparently retries idempotent ops when a backend
// is lost mid-flight, applies per-tenant admission control, and
// aggregates the fleet's metrics on its own admin plane so the whole
// cluster scrapes like one process.
//
// Backends are named addr or addr@adminAddr; with an admin address the
// health checker probes the backend's /healthz (which a gfserved only
// answers 200 after its datapath self-test passed) and the fleet
// aggregator scrapes its /statsz; without one, health falls back to a
// TCP dial of the GFP1 port.
//
// Usage:
//
//	gfproxy -backends HOST:A[@HOST:ADMIN],HOST:B,... [-addr :4660]
//	        [-admin ADDR] [-replicas 64] [-retries 2] [-pool 4]
//	        [-window 32] [-max-payload 1048576] [-tenant-inflight 0]
//	        [-route conn|request] [-health-interval 1s]
//	        [-health-timeout 1s] [-fail-after 2] [-readmit-after 2]
//	        [-dial-wait 1s] [-forward-timeout 30s] [-read-timeout 2m]
//	        [-write-timeout 30s] [-grace 30s] [-quiet]
//	        [-trace-every 0] [-trace-ring 256] [-log-format text|json]
//	        [-slo SPEC] [-slo-window 1m] [-wide-every N]
//
// Examples:
//
//	gfproxy -backends :4650,:4651,:4652                  # 3-way fleet
//	gfproxy -backends :4650@:9090,:4651@:9091 -admin :9095
//	gfproxy -backends :4650 -route request               # spread one conn
//	gfproxy -backends :4650 -tenant-inflight 64          # per-IP budget
//	gfproxy -backends :4650 -trace-every 100             # self-sample traces
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/server"
)

type cliConfig struct {
	addr           string
	backends       string
	adminAddr      string
	replicas       int
	retries        int
	pool           int
	window         int
	maxPayload     int
	tenantInflight int
	route          string
	healthInterval time.Duration
	healthTimeout  time.Duration
	failAfter      int
	readmitAfter   int
	dialWait       time.Duration
	forwardTimeout time.Duration
	readTimeout    time.Duration
	writeTimeout   time.Duration
	grace          time.Duration
	quiet          bool
	traceEvery     int
	traceRing      int
	logFormat      string
	slo            string
	sloWindow      time.Duration
	wideEvery      int
}

// newLogger builds the process logger: structured slog on stderr, text
// (the human-friendly default) or JSON (one machine-parseable object
// per line — the shape log pipelines ingest wide events in).
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.addr, "addr", ":4660", "TCP listen address")
	flag.StringVar(&cfg.backends, "backends", "", "comma-separated backend specs, addr or addr@adminAddr (required)")
	flag.StringVar(&cfg.adminAddr, "admin", "", "admin HTTP listen address for /metrics, /healthz, /statsz and /debug/pprof (empty = off)")
	flag.IntVar(&cfg.replicas, "replicas", 0, "virtual nodes per backend on the hash ring (0 = 64)")
	flag.IntVar(&cfg.retries, "retries", 2, "extra forward attempts per request (idempotent ops only)")
	flag.IntVar(&cfg.pool, "pool", 4, "idle GFP1 connections kept per backend")
	flag.IntVar(&cfg.window, "window", 32, "max in-flight requests per client connection")
	flag.IntVar(&cfg.maxPayload, "max-payload", server.DefaultMaxPayload, "max request payload bytes")
	flag.IntVar(&cfg.tenantInflight, "tenant-inflight", 0, "max in-flight requests per client IP (0 = unlimited)")
	flag.StringVar(&cfg.route, "route", "conn", "routing key granularity: conn (one backend per connection) or request")
	flag.DurationVar(&cfg.healthInterval, "health-interval", time.Second, "active health-probe period")
	flag.DurationVar(&cfg.healthTimeout, "health-timeout", time.Second, "per-probe time limit")
	flag.IntVar(&cfg.failAfter, "fail-after", 2, "consecutive failures that eject a backend")
	flag.IntVar(&cfg.readmitAfter, "readmit-after", 2, "consecutive successful probes that readmit a backend")
	flag.DurationVar(&cfg.dialWait, "dial-wait", time.Second, "backend connection-establishment budget")
	flag.DurationVar(&cfg.forwardTimeout, "forward-timeout", 30*time.Second, "per-attempt forward time limit")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 2*time.Minute, "per-connection idle limit (0 = none)")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 30*time.Second, "per-response write limit (0 = none)")
	flag.DurationVar(&cfg.grace, "grace", 30*time.Second, "shutdown drain budget before connections are cut")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress the final stats snapshot")
	flag.IntVar(&cfg.traceEvery, "trace-every", 0, "self-sample every Nth untraced request as a new root trace (0 = off; client-traced requests are always honored)")
	flag.IntVar(&cfg.traceRing, "trace-ring", 0, "distributed-trace spans retained for /tracez (0 = 256)")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "stderr log format: text or json")
	flag.StringVar(&cfg.slo, "slo", "", "latency objectives, op=threshold@percent comma-separated (e.g. 'rs-encode=5ms@99.9,default=10ms@99'; empty = off)")
	flag.DurationVar(&cfg.sloWindow, "slo-window", time.Minute, "rolling window for the SLO error-budget burn rate")
	flag.IntVar(&cfg.wideEvery, "wide-every", 0, "emit a structured wide event for every traced request plus one in N untraced completions (0 = wide events off)")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gfproxy:", err)
		os.Exit(1)
	}
}

func run(cfg cliConfig, out io.Writer) error {
	if cfg.backends == "" {
		return fmt.Errorf("no -backends given (addr or addr@adminAddr, comma-separated)")
	}
	var specs []cluster.BackendSpec
	for _, raw := range strings.Split(cfg.backends, ",") {
		spec, err := cluster.ParseBackendSpec(raw)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	var routeByRequest bool
	switch cfg.route {
	case "conn":
	case "request":
		routeByRequest = true
	default:
		return fmt.Errorf("unknown -route %q (want conn or request)", cfg.route)
	}

	logger, err := newLogger(cfg.logFormat)
	if err != nil {
		return err
	}
	logger = logger.With(slog.String("proc", "gfproxy"))
	objectives, err := obs.ParseObjectives(cfg.slo)
	if err != nil {
		return err
	}
	var wideLog *slog.Logger
	if cfg.wideEvery > 0 {
		wideLog = logger
	}
	p, err := cluster.New(cluster.Config{
		Backends:       specs,
		Replicas:       cfg.replicas,
		Retries:        cfg.retries,
		PoolSize:       cfg.pool,
		DialWait:       cfg.dialWait,
		ForwardTimeout: cfg.forwardTimeout,
		Window:         cfg.window,
		MaxPayload:     cfg.maxPayload,
		TenantInflight: cfg.tenantInflight,
		RouteByRequest: routeByRequest,
		HealthInterval: cfg.healthInterval,
		HealthTimeout:  cfg.healthTimeout,
		FailAfter:      cfg.failAfter,
		ReadmitAfter:   cfg.readmitAfter,
		ReadTimeout:    cfg.readTimeout,
		WriteTimeout:   cfg.writeTimeout,
		TraceEvery:     cfg.traceEvery,
		TraceRing:      cfg.traceRing,
		SLO:            obs.NewSLO(objectives, cfg.sloWindow),
		WideLog:        wideLog,
		WideEvery:      cfg.wideEvery,
		Logf: func(format string, args ...any) {
			logger.Warn(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)

	if cfg.adminAddr != "" {
		aln, err := net.Listen("tcp", cfg.adminAddr)
		if err != nil {
			return fmt.Errorf("admin listen: %w", err)
		}
		admin := &http.Server{Handler: p.AdminHandler(reg)}
		go admin.Serve(aln)
		defer admin.Close()
		fmt.Fprintf(out, "gfproxy: admin on http://%s — /metrics /healthz /statsz /tracez /debug/pprof\n", aln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- p.ListenAndServe(cfg.addr)
	}()

	// Wait for the listener so the printed address is real (matters for
	// -addr :0); a bind error is the only thing that can race us here.
	for p.Addr() == nil {
		select {
		case err := <-serveErr:
			return err
		default:
			time.Sleep(time.Millisecond)
		}
	}
	fmt.Fprintf(out, "gfproxy: listening on %s — %d backends, %s routing, %d retries, window %d\n",
		p.Addr(), len(specs), cfg.route, cfg.retries, cfg.window)

	select {
	case sig := <-stop:
		fmt.Fprintf(out, "gfproxy: %v — draining (budget %v)\n", sig, cfg.grace)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.grace)
		defer cancel()
		if err := p.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-serveErr // Serve returns nil once the listener closes
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}

	if !cfg.quiet {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p.Statsz()); err != nil {
			return err
		}
	}
	return nil
}
