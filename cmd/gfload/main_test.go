package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// startServer brings up an in-process codec server on an ephemeral
// loopback port and tears it down with a bounded drain.
func startServer(t *testing.T, cfg server.Config) string {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe("127.0.0.1:0") }()
	for s.Addr() == nil {
		select {
		case err := <-done:
			t.Fatalf("serve: %v", err)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s.Addr().String()
}

// TestLoadCleanChannel is the acceptance run: 10k RS(255,239) round
// trips over 8 connections x 8 pipelined workers against a live server,
// clean channel — every word must come back bit-exact.
func TestLoadCleanChannel(t *testing.T) {
	addr := startServer(t, server.Config{N: 255, K: 239, Depth: 1, Window: 8})
	var out bytes.Buffer
	res, err := run(cliConfig{
		addr: addr, conns: 8, window: 8, requests: 10000,
		seed: 1, wait: 2 * time.Second,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if got := res.completed.Load(); got != 10000 {
		t.Errorf("completed = %d, want 10000", got)
	}
	if res.residual.Load() != 0 || res.uncorrectable.Load() != 0 {
		t.Errorf("residual %d, uncorrectable %d, want 0/0",
			res.residual.Load(), res.uncorrectable.Load())
	}
	if res.hist.Count() != 10000 {
		t.Errorf("latency samples = %d, want 10000", res.hist.Count())
	}
	if !strings.Contains(out.String(), "round-trip latency:") {
		t.Errorf("report missing latency line:\n%s", out.String())
	}
}

// TestLoadNoisyChannel drives a corrupting channel well inside the
// code's correction power: every word must still round-trip, now with
// real symbol errors being fixed server-side.
func TestLoadNoisyChannel(t *testing.T) {
	addr := startServer(t, server.Config{N: 255, K: 223, Depth: 1, Window: 4})
	var out bytes.Buffer
	res, err := run(cliConfig{
		addr: addr, conns: 3, window: 4, requests: 300,
		p: 0.002, seed: 42, wait: 2 * time.Second, quiet: true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	// p=0.002 over 255 bytes ≈ 4 bit flips/word — far below t=16, so
	// uncorrectable words mean the generator or server is broken.
	if res.uncorrectable.Load() > 0 || res.residual.Load() != 0 {
		t.Errorf("uncorrectable %d, residual %d", res.uncorrectable.Load(), res.residual.Load())
	}
	if got := res.completed.Load(); got != 300 {
		t.Errorf("completed = %d, want 300", got)
	}
}

// TestLoadMultiTarget splits one budget across two live servers:
// every round trip lands somewhere, both targets take real load, and
// the merged histogram is exactly the union of the per-target ones.
func TestLoadMultiTarget(t *testing.T) {
	a := startServer(t, server.Config{N: 255, K: 239, Depth: 1, Window: 8})
	b := startServer(t, server.Config{N: 255, K: 239, Depth: 1, Window: 8})
	var out bytes.Buffer
	res, err := run(cliConfig{
		addr: "ignored:0", targets: a + "," + b,
		conns: 4, window: 4, requests: 800,
		seed: 3, wait: 2 * time.Second,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if got := res.completed.Load(); got != 800 {
		t.Errorf("completed = %d, want 800", got)
	}
	if len(res.perTarget) != 2 {
		t.Fatalf("perTarget = %d entries, want 2", len(res.perTarget))
	}
	var sum int64
	for _, tr := range res.perTarget {
		if tr.completed.Load() == 0 {
			t.Errorf("target %s took no load", tr.addr)
		}
		sum += tr.hist.Count()
	}
	if res.hist.Count() != sum {
		t.Errorf("merged hist count %d != per-target sum %d", res.hist.Count(), sum)
	}
	// The report carries a per-target latency line for each address.
	for _, addr := range []string{a, b} {
		if !strings.Contains(out.String(), addr+":") {
			t.Errorf("report missing per-target line for %s:\n%s", addr, out.String())
		}
	}
}

// TestLoadGeometryMismatch: targets serving different codes are refused
// up front, before any load is generated.
func TestLoadGeometryMismatch(t *testing.T) {
	a := startServer(t, server.Config{N: 255, K: 239, Depth: 1})
	b := startServer(t, server.Config{N: 255, K: 223, Depth: 1})
	_, err := run(cliConfig{
		addr: "ignored:0", targets: a + "," + b,
		conns: 2, window: 2, requests: 10,
		wait: 2 * time.Second, quiet: true,
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "geometry mismatch") {
		t.Errorf("mismatched fleet: err = %v, want geometry mismatch", err)
	}
}

// TestLoadECCMode: sign/verify/derive round trips against a live
// server, with the shared secret cross-checked client-side.
func TestLoadECCMode(t *testing.T) {
	addr := startServer(t, server.Config{Window: 8})
	var out bytes.Buffer
	res, err := run(cliConfig{
		addr: addr, mode: "ecc", conns: 2, window: 2, requests: 40,
		seed: 5, wait: 2 * time.Second,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if got := res.completed.Load(); got != 40 {
		t.Errorf("completed = %d, want 40", got)
	}
	if res.residual.Load() != 0 {
		t.Errorf("residual = %d cross-check mismatches", res.residual.Load())
	}
	if !strings.Contains(out.String(), "mode ecc on NIST K-233") {
		t.Errorf("banner missing the curve:\n%s", out.String())
	}
}

// TestLoadSessionMode: secure-session handshakes, each sealed response
// opened with the client's private key.
func TestLoadSessionMode(t *testing.T) {
	addr := startServer(t, server.Config{Window: 8})
	res, err := run(cliConfig{
		addr: addr, mode: "session", conns: 2, window: 2, requests: 20,
		seed: 9, wait: 2 * time.Second, quiet: true,
	}, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := res.completed.Load(); got != 20 {
		t.Errorf("completed = %d, want 20", got)
	}
	if res.residual.Load() != 0 {
		t.Errorf("residual = %d handshakes failed to open", res.residual.Load())
	}
}

// TestLoadECCModeAgainstDisabledServer: a curve=off target is refused
// at the probe, before any load is generated.
func TestLoadECCModeAgainstDisabledServer(t *testing.T) {
	addr := startServer(t, server.Config{Curve: server.CurveOff})
	_, err := run(cliConfig{
		addr: addr, mode: "ecc", conns: 1, window: 1, requests: 1,
		wait: 2 * time.Second, quiet: true,
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "does not serve the ecc ops") {
		t.Errorf("ecc mode against curve=off: err = %v", err)
	}
}

// TestRunRejects: config validation happens before any sockets open.
func TestRunRejects(t *testing.T) {
	cases := []cliConfig{
		{conns: 0, window: 8, requests: 100},
		{conns: 8, window: 0, requests: 100},
		{conns: 8, window: 8, requests: 0},
		{conns: 8, window: 8, requests: 100, p: 1.0},
		{conns: 8, window: 8, requests: 100, p: -0.1},
		{conns: 8, window: 8, requests: 100, mode: "edwards"},
	}
	for _, cfg := range cases {
		if _, err := run(cfg, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%+v) accepted bad config", cfg)
		}
	}
}

// TestMetricsOutDump: -metrics-out writes the gfp_load_* registry dump,
// with per-outcome round-trip counters and the latency histogram.
func TestMetricsOutDump(t *testing.T) {
	addr := startServer(t, server.Config{N: 255, K: 239, Depth: 1, Window: 8})
	path := t.TempDir() + "/metrics.json"
	res, err := run(cliConfig{
		addr: addr, conns: 2, window: 2, requests: 200,
		seed: 1, wait: 2 * time.Second, quiet: true, metricsOut: path,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var metrics []struct {
		Name    string `json:"name"`
		Samples []struct {
			Labels []struct {
				Key   string `json:"key"`
				Value string `json:"value"`
			} `json:"labels"`
			Value float64 `json:"value"`
			Hist  *struct {
				Count int64 `json:"count"`
			} `json:"hist"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("dump not JSON: %v", err)
	}
	var okTrips, histCount int64 = -1, -1
	for _, m := range metrics {
		for _, s := range m.Samples {
			switch {
			case m.Name == "gfp_load_round_trips_total" &&
				len(s.Labels) == 1 && s.Labels[0].Value == "ok":
				okTrips = int64(s.Value)
			case m.Name == "gfp_load_round_trip_seconds" && s.Hist != nil:
				histCount = s.Hist.Count
			}
		}
	}
	if okTrips != res.completed.Load() {
		t.Errorf("dump ok trips = %d, want %d", okTrips, res.completed.Load())
	}
	if histCount != res.completed.Load() {
		t.Errorf("dump hist count = %d, want %d", histCount, res.completed.Load())
	}
}
