// Command gfload is a closed-loop load generator for gfserved: it opens
// -conns connections, runs -window concurrent workers per connection
// (so each connection keeps up to -window requests pipelined), and
// drives RS round trips through the server — encode a random message,
// corrupt the codeword client-side through a binary symmetric channel,
// send it back for decode, and verify the recovered bytes match.
//
// The run fails (nonzero exit) on any transport error or any round trip
// that delivers wrong bytes; uncorrectable words (the server's
// codec-failed status) are counted and only fatal on a clean channel
// (-p 0), where every word must decode.
//
// Two further workloads drive the ECC service instead of the RS codec:
// -mode ecc runs sign → verify → derive round trips (the ECDH shared
// secret is cross-checked against the client-side computation, so wrong
// math — not just transport failures — fails the run), and -mode
// session runs secure-session handshakes, opening each sealed response
// with the client's private key.
//
// Usage:
//
//	gfload [-addr 127.0.0.1:4650] [-targets a:4650,b:4650,...]
//	       [-mode rs|ecc|session]
//	       [-conns 8] [-window 8] [-requests 10000] [-p 0] [-seed 1]
//	       [-wait 5s] [-quiet] [-trace N] [-slo SPEC] [-slo-window 1m]
//
// With -trace N, one round trip in N carries a distributed-trace context
// through every GFP1 hop (proxy and backend record spans under the same
// trace id); the sampled ids are listed in the report so each can be
// looked up on the servers' /tracez. With -slo, round-trip latencies
// feed a client-side objective tracker (specs are mode=threshold@percent,
// e.g. 'rs=5ms@99'; "default" catches the rest) whose burn rate lands in
// the report — the view from the paying side of the socket, which is the
// latency the server-side SLO pages should agree with.
//
// With -targets, connections round-robin across several gfserved (or
// gfproxy) addresses; the report shows per-target and merged
// percentiles, with the merged histogram built by bucket-merging the
// per-target ones. All targets must serve the same code geometry.
//
// Examples:
//
//	gfload                          # 10k clean round trips over 8 conns
//	gfload -p 0.004                 # ~1 symbol error per codeword
//	gfload -conns 32 -window 16     # deeper concurrency
//	gfload -targets :4650,:4651     # split load across two servers
package main

import (
	"bytes"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/ecc"
	"repro/internal/gf"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/perf"
	"repro/internal/server"
)

type cliConfig struct {
	addr       string
	targets    string
	mode       string
	conns      int
	window     int
	requests   int
	batch      int
	p          float64
	seed       int64
	wait       time.Duration
	quiet      bool
	metricsOut string
	trace      int
	slo        string
	sloWindow  time.Duration
}

// maxReportedTraces caps the sampled-id list in the report; a long run
// at -trace 1 should not print thousands of ids.
const maxReportedTraces = 8

// loadTracer owns the client side of the run's observability: the
// sampling decision for distributed traces (one round trip in every
// -trace), the list of sampled ids for the report, and the client-side
// SLO tracker fed by every round trip.
type loadTracer struct {
	every int64
	slo   *obs.SLO
	tick  atomic.Int64
	mu    sync.Mutex
	ids   []string
}

// begin decides whether the next round trip is traced. A sampled context
// carries a fresh trace id and a zero parent span, so the first
// server-side span becomes the trace root.
func (lt *loadTracer) begin() trace.Context {
	if lt.every <= 0 || lt.tick.Add(1)%lt.every != 0 {
		return trace.Context{}
	}
	tc := trace.Context{Trace: trace.NewID(), Sampled: true}
	lt.mu.Lock()
	if len(lt.ids) < maxReportedTraces {
		lt.ids = append(lt.ids, trace.FormatID(tc.Trace))
	}
	lt.mu.Unlock()
	return tc
}

// call issues one op on c, attaching the trace extension when the round
// trip is sampled; untraced calls are byte-identical to Client.Call.
func (lt *loadTracer) call(c *server.Client, tc trace.Context, op server.Op, params, payload []byte) (*server.Message, error) {
	m := &server.Message{Op: op, Params: params, Payload: payload}
	if tc.Sampled {
		server.AttachTrace(m, tc)
	}
	return c.Do(m)
}

// traces returns the sampled ids collected so far.
func (lt *loadTracer) traces() []string {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return append([]string(nil), lt.ids...)
}

// result summarizes a run for CLI-level tests. In multi-target mode the
// top-level result is the merged view (counters summed, latency
// histograms bucket-merged via perf.Hist.Merge) and perTarget holds one
// result per address.
type result struct {
	addr          string       // "" for the merged result
	completed     atomic.Int64 // round trips that produced the original bytes
	uncorrectable atomic.Int64 // server reported codec-failed (channel beat the code)
	residual      atomic.Int64 // round trips that delivered wrong bytes
	hist          *perf.Hist
	elapsed       time.Duration
	perTarget     []*result // one per target when more than one was given
}

func main() {
	var cfg cliConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:4650", "gfserved address")
	flag.StringVar(&cfg.targets, "targets", "", "comma-separated gfserved/gfproxy addresses; connections round-robin across them (overrides -addr)")
	flag.StringVar(&cfg.mode, "mode", "rs",
		"workload: rs (encode/corrupt/decode), ecc (sign + verify + derive, cross-checked client-side), session (secure-session handshakes)")
	flag.IntVar(&cfg.conns, "conns", 8, "concurrent connections")
	flag.IntVar(&cfg.window, "window", 8, "pipelined requests per connection")
	flag.IntVar(&cfg.requests, "requests", 10000, "total round trips")
	flag.IntVar(&cfg.batch, "batch", 1, "interleaver frames packed per request (server must allow it)")
	flag.Float64Var(&cfg.p, "p", 0, "channel bit-flip probability applied client-side")
	flag.Int64Var(&cfg.seed, "seed", 1, "rng seed (payloads and channel)")
	flag.DurationVar(&cfg.wait, "wait", 5*time.Second, "retry budget while connecting")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress the report")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write a JSON metrics registry dump to this file on exit")
	flag.IntVar(&cfg.trace, "trace", 0, "carry a distributed-trace context on one round trip in N (0 = off); sampled ids land in the report")
	flag.StringVar(&cfg.slo, "slo", "", "client-side latency objectives per mode, mode=threshold@percent comma-separated (e.g. 'rs=5ms@99,default=10ms@95'; empty = off)")
	flag.DurationVar(&cfg.sloWindow, "slo-window", time.Minute, "rolling window for the SLO burn rate")
	flag.Parse()

	if _, err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gfload:", err)
		os.Exit(1)
	}
}

func run(cfg cliConfig, w io.Writer) (*result, error) {
	if cfg.batch == 0 {
		cfg.batch = 1 // zero value from config literals = unbatched
	}
	if cfg.conns < 1 || cfg.window < 1 || cfg.requests < 1 || cfg.batch < 1 {
		return nil, fmt.Errorf("-conns, -window, -requests and -batch must be positive")
	}
	if cfg.p < 0 || cfg.p >= 1 {
		return nil, fmt.Errorf("channel probability %v outside [0,1)", cfg.p)
	}
	if cfg.mode == "" {
		cfg.mode = "rs" // zero value from config literals
	}
	switch cfg.mode {
	case "rs", "ecc", "session":
	default:
		return nil, fmt.Errorf("unknown -mode %q (have rs, ecc, session)", cfg.mode)
	}

	objectives, err := obs.ParseObjectives(cfg.slo)
	if err != nil {
		return nil, err
	}
	lt := &loadTracer{every: int64(cfg.trace), slo: obs.NewSLO(objectives, cfg.sloWindow)}

	targets := []string{cfg.addr}
	if cfg.targets != "" {
		targets = targets[:0]
		for _, raw := range strings.Split(cfg.targets, ",") {
			addr := strings.TrimSpace(raw)
			if addr == "" {
				return nil, fmt.Errorf("-targets has an empty address in %q", cfg.targets)
			}
			targets = append(targets, addr)
		}
	}
	if cfg.conns < len(targets) {
		return nil, fmt.Errorf("%d conns cannot cover %d targets", cfg.conns, len(targets))
	}

	// One probe connection per target discovers the frame geometry (and,
	// for the ECC modes, the curve and public key) so the generator never
	// guesses payload sizes; every target must serve the same code, or a
	// round trip verified against another target's geometry would be
	// meaningless. The ECC section may legitimately differ per target
	// (distinct fleets, distinct keys), so it is kept per target.
	frameK := 0
	eccEnvs := make([]*eccEnv, len(targets))
	for i, addr := range targets {
		probe, err := server.Dial(addr, cfg.wait)
		if err != nil {
			return nil, fmt.Errorf("connect %s: %w", addr, err)
		}
		snap, err := probe.Stats()
		probe.Close()
		if err != nil {
			return nil, fmt.Errorf("stats probe %s: %w", addr, err)
		}
		if cfg.batch > 1 && snap.Config.Batch < cfg.batch {
			return nil, fmt.Errorf("target %s allows batch %d, want %d: restart it with -batch >= %d",
				addr, snap.Config.Batch, cfg.batch, cfg.batch)
		}
		if cfg.mode != "rs" {
			if eccEnvs[i], err = newECCEnv(snap.Config.ECC); err != nil {
				return nil, fmt.Errorf("target %s: %w", addr, err)
			}
		}
		if i == 0 {
			frameK = snap.Config.FrameK
			if !cfg.quiet {
				switch cfg.mode {
				case "rs":
					fmt.Fprintf(w, "gfload: %s — RS(%d,%d) depth %d (%dB messages x batch %d), %d conns x %d window, %d round trips, channel p=%g\n",
						strings.Join(targets, ","), snap.Config.N, snap.Config.K, snap.Config.Depth,
						frameK, cfg.batch, cfg.conns, cfg.window, cfg.requests, cfg.p)
				default:
					fmt.Fprintf(w, "gfload: %s — mode %s on %s, %d conns x %d window, %d round trips\n",
						strings.Join(targets, ","), cfg.mode, eccEnvs[0].info.Curve,
						cfg.conns, cfg.window, cfg.requests)
				}
			}
		} else if snap.Config.FrameK != frameK {
			return nil, fmt.Errorf("target %s serves %dB frames, %s serves %dB: fleet geometry mismatch",
				addr, snap.Config.FrameK, targets[0], frameK)
		}
	}

	perTarget := make([]*result, len(targets))
	for i, addr := range targets {
		perTarget[i] = &result{addr: addr, hist: &perf.Hist{}}
	}
	var issued atomic.Int64 // round trips claimed so far, capped at cfg.requests
	errs := make(chan error, cfg.conns*cfg.window)
	var wg sync.WaitGroup

	start := time.Now()
	for ci := 0; ci < cfg.conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			tres := perTarget[ci%len(targets)] // connections round-robin across targets
			c, err := server.Dial(tres.addr, cfg.wait)
			if err != nil {
				errs <- fmt.Errorf("conn %d (%s): %w", ci, tres.addr, err)
				return
			}
			defer c.Close()
			env := eccEnvs[ci%len(targets)]
			var inner sync.WaitGroup
			for wi := 0; wi < cfg.window; wi++ {
				inner.Add(1)
				go func(wi int) {
					defer inner.Done()
					id := int64(ci*cfg.window + wi)
					var err error
					switch cfg.mode {
					case "ecc":
						err = workerECC(cfg, c, env, lt, id, &issued, tres)
					case "session":
						err = workerSession(cfg, c, env, lt, id, &issued, tres)
					default:
						err = worker(cfg, c, frameK, lt, id, &issued, tres)
					}
					if err != nil {
						errs <- fmt.Errorf("conn %d (%s) worker %d: %w", ci, tres.addr, wi, err)
					}
				}(wi)
			}
			inner.Wait()
		}(ci)
	}
	wg.Wait()

	// Merge the per-target views into the top-level result: counters
	// sum, raw latency buckets merge, so the combined percentiles come
	// from the union of samples.
	res := &result{hist: &perf.Hist{}, elapsed: time.Since(start)}
	for _, tr := range perTarget {
		res.completed.Add(tr.completed.Load())
		res.uncorrectable.Add(tr.uncorrectable.Load())
		res.residual.Add(tr.residual.Load())
		res.hist.Merge(tr.hist)
	}
	if len(perTarget) > 1 {
		res.perTarget = perTarget
	}
	close(errs)

	// Dump metrics before the failure checks so a failed run still
	// leaves its numbers on disk for inspection.
	if cfg.metricsOut != "" {
		if err := writeMetricsDump(cfg.metricsOut, res); err != nil {
			return res, err
		}
	}
	for err := range errs {
		return res, err
	}

	if !cfg.quiet {
		report(w, cfg, res, frameK, lt)
	}
	if n := res.residual.Load(); n > 0 {
		return res, fmt.Errorf("%d round trips delivered wrong bytes", n)
	}
	if n := res.uncorrectable.Load(); cfg.p == 0 && n > 0 {
		return res, fmt.Errorf("%d decode failures on a clean channel", n)
	}
	return res, nil
}

// worker claims round trips off the shared budget until it is spent.
// Each round trip is two pipelined calls on the connection shared with
// the sibling workers: encode, client-side corruption, decode, verify.
func worker(cfg cliConfig, c *server.Client, frameK int, lt *loadTracer, id int64, issued *atomic.Int64, res *result) error {
	rng := rand.New(rand.NewSource(cfg.seed + 7919*id))
	var ch channel.Channel
	if cfg.p > 0 {
		var err error
		if ch, err = channel.NewBSC(cfg.p, cfg.seed+104729*id); err != nil {
			return err
		}
	}
	msg := make([]byte, cfg.batch*frameK)
	for issued.Add(1) <= int64(cfg.requests) {
		rng.Read(msg)
		tc := lt.begin()
		t0 := time.Now()
		em, err := lt.call(c, tc, server.OpRSEncode, nil, msg)
		if err != nil {
			return fmt.Errorf("encode: %w", err)
		}
		cw := em.Payload
		if ch != nil {
			cw = corruptBytes(ch, cw)
		}
		dm, err := lt.call(c, tc, server.OpRSDecode, nil, cw)
		if err != nil {
			var se *server.StatusError
			if errors.As(err, &se) && se.Status == server.StatusCodecFailed {
				res.uncorrectable.Add(1)
				continue
			}
			return fmt.Errorf("decode: %w", err)
		}
		got := dm.Payload
		res.hist.Observe(time.Since(t0))
		lt.slo.Observe(cfg.mode, res.addr, time.Since(t0))
		if !bytes.Equal(got, msg) {
			res.residual.Add(1)
			continue
		}
		res.completed.Add(1)
	}
	return nil
}

// eccEnv is one target's discovered ECC service: the curve, the
// server's public point (parsed once for the client-side cross-check)
// and the advertised wire widths.
type eccEnv struct {
	info   *server.ECCInfo
	curve  *ecc.Curve
	srvPub []byte
	srvPt  ecc.Point
}

func newECCEnv(info *server.ECCInfo) (*eccEnv, error) {
	if info == nil {
		return nil, fmt.Errorf("target does not serve the ecc ops (started with -curve off?)")
	}
	curve, err := ecc.CurveByName(info.Curve)
	if err != nil {
		return nil, err
	}
	srvPub, err := hex.DecodeString(info.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("advertised public key: %w", err)
	}
	srvPt, err := curve.UnmarshalUncompressed(srvPub)
	if err != nil {
		return nil, fmt.Errorf("advertised public key: %w", err)
	}
	return &eccEnv{info: info, curve: curve, srvPub: srvPub, srvPt: srvPt}, nil
}

// clientKey deterministically generates this worker's ECDH/ECDSA key
// pair from the run seed.
func (env *eccEnv) clientKey(rng *rand.Rand) (*ecc.PrivateKey, []byte, error) {
	d, err := env.curve.RandomScalar(rng)
	if err != nil {
		return nil, nil, err
	}
	cli, err := ecc.NewPrivateKey(env.curve, d)
	if err != nil {
		return nil, nil, err
	}
	return cli, env.curve.MarshalUncompressed(cli.Pub), nil
}

// workerECC drives sign → verify → derive round trips: the server signs
// a random digest, the verify op checks it, and the ECDH shared secret
// is cross-checked against the client-side computation — every answer
// is validated against independent math, not just for transport
// success. A cross-check mismatch counts as a residual error.
func workerECC(cfg cliConfig, c *server.Client, env *eccEnv, lt *loadTracer, id int64, issued *atomic.Int64, res *result) error {
	rng := rand.New(rand.NewSource(cfg.seed + 7919*id))
	cli, cliPub, err := env.clientKey(rng)
	if err != nil {
		return err
	}
	wantShared, err := cli.SharedSecret(env.srvPt)
	if err != nil {
		return err
	}
	digest := make([]byte, 32)
	for issued.Add(1) <= int64(cfg.requests) {
		rng.Read(digest)
		tc := lt.begin()
		t0 := time.Now()
		sm, err := lt.call(c, tc, server.OpECDSASign, nil, digest)
		if err != nil {
			return fmt.Errorf("ecdsa-sign: %w", err)
		}
		sig := sm.Payload
		vp := make([]byte, 0, len(env.srvPub)+len(sig)+len(digest))
		vp = append(vp, env.srvPub...)
		vp = append(vp, sig...)
		vp = append(vp, digest...)
		if _, err := lt.call(c, tc, server.OpECDSAVerify, nil, vp); err != nil {
			return fmt.Errorf("ecdsa-verify of the server's own signature: %w", err)
		}
		dm, err := lt.call(c, tc, server.OpECDHDerive, nil, cliPub)
		if err != nil {
			return fmt.Errorf("ecdh-derive: %w", err)
		}
		shared := dm.Payload
		res.hist.Observe(time.Since(t0))
		lt.slo.Observe(cfg.mode, res.addr, time.Since(t0))
		if !bytes.Equal(shared, wantShared) {
			res.residual.Add(1)
			continue
		}
		res.completed.Add(1)
	}
	return nil
}

// workerSession drives secure-session handshakes: each round trip sends
// a fresh challenge, opens the sealed response with the client's
// private key and checks the recovered challenge byte-for-byte.
func workerSession(cfg cliConfig, c *server.Client, env *eccEnv, lt *loadTracer, id int64, issued *atomic.Int64, res *result) error {
	rng := rand.New(rand.NewSource(cfg.seed + 7919*id))
	cli, cliPub, err := env.clientKey(rng)
	if err != nil {
		return err
	}
	challenge := make([]byte, 32)
	for issued.Add(1) <= int64(cfg.requests) {
		rng.Read(challenge)
		tc := lt.begin()
		t0 := time.Now()
		hp := make([]byte, 0, len(cliPub)+len(challenge))
		hp = append(hp, cliPub...)
		hp = append(hp, challenge...)
		hm, err := lt.call(c, tc, server.OpSecureSession, nil, hp)
		if err != nil {
			return fmt.Errorf("secure-session: %w", err)
		}
		key, got, err := ecc.OpenSessionResponse(cli, cliPub, hm.Payload)
		res.hist.Observe(time.Since(t0))
		lt.slo.Observe(cfg.mode, res.addr, time.Since(t0))
		if err != nil || len(key) != 16 || !bytes.Equal(got, challenge) {
			res.residual.Add(1)
			continue
		}
		res.completed.Add(1)
	}
	return nil
}

// corruptBytes pushes a byte frame through the channel model (8-bit
// symbols).
func corruptBytes(ch channel.Channel, b []byte) []byte {
	syms := make([]gf.Elem, len(b))
	for i, v := range b {
		syms[i] = gf.Elem(v)
	}
	out := channel.TransmitSymbols(ch, syms, 8)
	res := make([]byte, len(out))
	for i, v := range out {
		res[i] = byte(v)
	}
	return res
}

// registerMetrics exposes the run's counters as gfp_load_* instruments:
// the merged view unlabeled (as always), plus one target-labeled series
// per address in multi-target mode. Counter values are frozen at
// registration time — registration happens strictly after the worker
// drain (wg.Wait has returned and the per-target views are merged), so
// the dump is one consistent point-in-time snapshot; live closures over
// the atomics could otherwise be scraped mid-merge and show a merged
// total that disagrees with the per-target series it was summed from.
func registerMetrics(reg *obs.Registry, res *result) {
	frozen := func(c *atomic.Int64) func() int64 {
		v := c.Load()
		return func() int64 { return v }
	}
	const name, help = "gfp_load_round_trips_total", "Round trips by outcome."
	reg.CounterFunc(name, help, frozen(&res.completed), obs.L("result", "ok"))
	reg.CounterFunc(name, help, frozen(&res.uncorrectable), obs.L("result", "uncorrectable"))
	reg.CounterFunc(name, help, frozen(&res.residual), obs.L("result", "wrong-bytes"))
	reg.HistogramFunc("gfp_load_round_trip_seconds",
		"Successful round-trip latency (encode + corrupt + decode).", res.hist)
	for _, tr := range res.perTarget {
		target := obs.L("target", tr.addr)
		reg.CounterFunc(name, help, frozen(&tr.completed), obs.L("result", "ok"), target)
		reg.CounterFunc(name, help, frozen(&tr.uncorrectable), obs.L("result", "uncorrectable"), target)
		reg.CounterFunc(name, help, frozen(&tr.residual), obs.L("result", "wrong-bytes"), target)
		reg.HistogramFunc("gfp_load_round_trip_seconds",
			"Successful round-trip latency (encode + corrupt + decode).", tr.hist, target)
	}
}

func writeMetricsDump(path string, res *result) error {
	reg := obs.NewRegistry()
	registerMetrics(reg, res)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics-out: %w", err)
	}
	return f.Close()
}

func report(w io.Writer, cfg cliConfig, res *result, frameK int, lt *loadTracer) {
	done := res.completed.Load()
	secs := res.elapsed.Seconds()
	fmt.Fprintf(w, "\n%-22s %d ok, %d uncorrectable, %d wrong-byte deliveries\n",
		"round trips:", done, res.uncorrectable.Load(), res.residual.Load())
	if cfg.mode == "rs" {
		fmt.Fprintf(w, "%-22s %v wall, %.0f round trips/s, %.2f MB/s payload\n",
			"throughput:", res.elapsed.Round(time.Millisecond),
			float64(done)/secs, float64(done)*float64(cfg.batch*frameK)/secs/1e6)
	} else {
		fmt.Fprintf(w, "%-22s %v wall, %.0f round trips/s\n",
			"throughput:", res.elapsed.Round(time.Millisecond), float64(done)/secs)
	}
	p50, p95, p99 := res.hist.Percentiles()
	fmt.Fprintf(w, "%-22s p50 %v  p95 %v  p99 %v  max %v\n",
		"round-trip latency:", p50, p95, p99, res.hist.Max())
	for _, tr := range res.perTarget {
		tp50, tp95, tp99 := tr.hist.Percentiles()
		fmt.Fprintf(w, "  %-20s %d ok  p50 %v  p95 %v  p99 %v  max %v\n",
			tr.addr+":", tr.completed.Load(), tp50, tp95, tp99, tr.hist.Max())
	}
	for _, st := range lt.slo.Snapshot() {
		fmt.Fprintf(w, "%-22s %s/%s %d of %d over %v (target p%g)  burn %.2fx  budget %.1f%% left\n",
			"slo:", st.Op, st.Tenant, st.Breaches, st.Total,
			time.Duration(st.ThresholdNs), st.Target, st.BurnRate, st.BudgetRemaining*100)
	}
	if ids := lt.traces(); len(ids) > 0 {
		fmt.Fprintf(w, "%-22s %s (look each up on a server's /tracez)\n",
			"sampled traces:", strings.Join(ids, " "))
	}
}
