// Command gfasm assembles GF-processor programs into loadable binary
// images and disassembles them back.
//
// Usage:
//
//	gfasm prog.s -o prog.bin        # assemble
//	gfasm -d prog.bin               # disassemble an image
//	gfasm -l prog.s                 # assemble and list (indices + labels)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
)

func main() {
	out := flag.String("o", "", "output image path (default: stdout listing only)")
	dis := flag.Bool("d", false, "disassemble a binary image")
	list := flag.Bool("l", false, "print a listing after assembling")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gfasm [-o out.bin] [-d] [-l] file")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *dis {
		var p isa.Program
		if err := p.UnmarshalBinary(data); err != nil {
			fatal(err)
		}
		fmt.Print(isa.Disassemble(&p))
		return
	}

	prog, err := isa.Assemble(string(data))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("assembled %d instructions, %d data bytes, %d labels\n",
		len(prog.Insts), len(prog.Data), len(prog.Labels))
	if *list {
		fmt.Print(isa.Disassemble(prog))
	}
	if *out != "" {
		img, err := prog.MarshalBinary()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, img, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d bytes to %s\n", len(img), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfasm:", err)
	os.Exit(1)
}
