// Command gfsim assembles and runs a program on the simulated GF
// processor (or on the baseline scalar profile), then prints registers,
// cycle counts, per-class statistics and GF-unit activity.
//
// Usage:
//
//	gfsim [-baseline] [-mem bytes] [-max cycles] [-dump label:words] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/hwmodel"
	"repro/internal/isa"
)

func main() {
	baseline := flag.Bool("baseline", false, "run without the GF arithmetic unit (M0+ profile)")
	memSize := flag.Int("mem", 64<<10, "data memory size in bytes")
	maxCycles := flag.Int64("max", 0, "cycle limit (0 = default 100M)")
	dump := flag.String("dump", "", "dump data memory after run: label:words (e.g. res:16)")
	trace := flag.Bool("trace", false, "print one line per retired instruction")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gfsim [flags] prog.s")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := isa.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{MemSize: *memSize, GFUnit: !*baseline}
	if *trace {
		cfg.Trace = os.Stdout
	}
	p, err := core.New(prog, cfg)
	if err != nil {
		fatal(err)
	}
	runErr := p.Run(*maxCycles)

	fmt.Printf("program: %d instructions, %d data bytes\n", len(prog.Insts), len(prog.Data))
	if *baseline {
		fmt.Println("profile: M0+ baseline (no GF unit)")
	} else {
		fmt.Println("profile: GF processor")
	}
	fmt.Printf("halted: %v   cycles: %d   instructions retired: %d\n",
		p.Halted(), p.Cycles(), p.Instructions())
	c := p.Counts()
	fmt.Printf("op mix: LD=%d ST=%d ALU=%d MUL=%d B(taken)=%d B(nt)=%d GF=%d GF32=%d\n",
		c.LD, c.ST, c.ALU, c.Mul, c.Branch, c.BranchNT, c.GFOp, c.GF32)
	if u := p.GFUnit(); u != nil && u.Configured() {
		st := u.Stats()
		fmt.Printf("GF unit: field GF(2^%d)/%#x, %d instructions, %d mult-unit uses, %d square-unit uses\n",
			u.M(), u.Poly(), st.Instructions, st.MultUses, st.SquareUses)
		fmt.Printf("GF unit busy %d/%d cycles (%.1f%%; idle cycles are data-gated)\n",
			p.GFBusyCycles(), p.Cycles(), 100*float64(p.GFBusyCycles())/float64(p.Cycles()))
		e := hwmodel.Estimate(p.Cycles(), p.GFBusyCycles(), 0)
		fmt.Printf("energy model @0.9V 100MHz: %.0f uW average, %.2f us, %.2f nJ\n",
			e.AvgPowerUW, e.TimeUs, e.EnergyNJ)
	}
	// Opcode histogram (top entries), useful for workload profiling — the
	// paper's "we profile the workloads and identify the subset" step.
	type opCount struct {
		name string
		n    int64
	}
	var hist []opCount
	for op, n := range p.OpHistogram() {
		hist = append(hist, opCount{isa.Inst{Op: op}.String(), n})
	}
	sort.Slice(hist, func(i, j int) bool { return hist[i].n > hist[j].n })
	fmt.Print("op histogram:")
	for i, h := range hist {
		if i == 8 {
			break
		}
		mn := strings.Fields(h.name)[0]
		fmt.Printf(" %s=%d", mn, h.n)
	}
	fmt.Println()
	fmt.Println("registers:")
	for r := 0; r < isa.NumRegs; r += 4 {
		fmt.Printf("  r%-2d=%08x  r%-2d=%08x  r%-2d=%08x  r%-2d=%08x\n",
			r, p.Reg(r), r+1, p.Reg(r+1), r+2, p.Reg(r+2), r+3, p.Reg(r+3))
	}
	if *dump != "" {
		parts := strings.SplitN(*dump, ":", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -dump %q, want label:words", *dump))
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad -dump word count %q", parts[1]))
		}
		addr, ok := prog.DataLabels[parts[0]]
		if !ok {
			fatal(fmt.Errorf("no data label %q", parts[0]))
		}
		mem := p.Mem()
		fmt.Printf("%s @%#x:\n", parts[0], addr)
		for i := 0; i < n; i++ {
			off := addr + 4*i
			v := uint32(mem[off]) | uint32(mem[off+1])<<8 | uint32(mem[off+2])<<16 | uint32(mem[off+3])<<24
			fmt.Printf("  [%2d] %08x\n", i, v)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gfsim:", err)
	os.Exit(1)
}
